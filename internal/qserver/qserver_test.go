package qserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/graph"
	"vicinity/internal/qclient"
	"vicinity/internal/traverse"
	"vicinity/internal/wire"
	"vicinity/internal/xrand"
)

// startServer builds a small oracle, starts a TCP server on a loopback
// port, and returns the server plus its address. Cleanup is registered
// on t.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	g := gen.HolmeKim(xrand.New(1), 400, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-done
	})
	return s, ln.Addr().String()
}

func TestDistanceAndPathRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g := s.Oracle().Graph()
	ws := traverse.NewWorkspace(g)
	r := xrand.New(2)
	for i := 0; i < 100; i++ {
		a, b := r.Uint32n(400), r.Uint32n(400)
		want := ws.BFSDist(a, b)
		got, _, err := c.Distance(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", a, b, got, want)
		}
		p, _, err := c.Path(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want == traverse.NoDist {
			if p != nil {
				t.Fatalf("path for unreachable pair: %v", p)
			}
			continue
		}
		if uint32(len(p)-1) != want || p[0] != a || p[len(p)-1] != b {
			t.Fatalf("bad path %v for (%d,%d), want %d hops", p, a, b, want)
		}
	}
}

func TestPingAndStats(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Two queries, then stats must reflect them.
	if _, _, err := c.Distance(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Distance(1, 2); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 400 || st.QueriesServed < 2 || st.Landmarks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutOfRangeError(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Distance(0, 100000)
	var werr *wire.ErrorResponse
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want wire.ErrorResponse", err)
	}
	if werr.Code != wire.CodeOutOfRange {
		t.Fatalf("code = %d, want %d", werr.Code, wire.CodeOutOfRange)
	}
	// The connection survives an application-level error.
	if _, _, err := c.Distance(0, 1); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{})
	g := s.Oracle().Graph()
	ws := traverse.NewWorkspace(g)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := qclient.Dial(addr, qclient.Options{})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			r := xrand.New(seed)
			for i := 0; i < 50; i++ {
				a, b := r.Uint32n(400), r.Uint32n(400)
				got, _, err := c.Distance(a, b)
				if err != nil {
					errCh <- err
					return
				}
				_ = got
			}
		}(uint64(w + 10))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Sanity: one deterministic check after the storm.
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := c.Distance(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := ws.BFSDist(3, 7); got != want {
		t.Fatalf("after concurrency: %d, want %d", got, want)
	}
	if m := s.Metrics(); m.Queries < 400 || m.TotalConns < 8 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPool(t *testing.T) {
	_, addr := startServer(t, Config{})
	p, err := qclient.NewPool(addr, 4, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 25; i++ {
				if _, _, err := p.Distance(ctx, r.Uint32n(400), r.Uint32n(400)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestConnectionCap(t *testing.T) {
	_, addr := startServer(t, Config{MaxConns: 1})
	c1, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	// Second connection must be refused with CodeUnavailable.
	c2, err := qclient.Dial(addr, qclient.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err) // dial succeeds; refusal arrives as an error frame
	}
	defer c2.Close()
	_, err = c2.Ping()
	var werr *wire.ErrorResponse
	if !errors.As(err, &werr) || werr.Code != wire.CodeUnavailable {
		t.Fatalf("second connection: err = %v, want unavailable", err)
	}
}

func TestMalformedFrameGetsErrorResponse(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame with a bad version byte.
	raw := wire.Marshal(&wire.PingRequest{Token: 1})
	raw[4] = 99
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatalf("no error frame: %v", err)
	}
	werr, ok := resp.(*wire.ErrorResponse)
	if !ok || werr.Code != wire.CodeBadRequest {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestShutdownUnblocksServe(t *testing.T) {
	g := gen.Path(10)
	o, err := core.Build(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

func TestHTTPGateway(t *testing.T) {
	s, _ := startServer(t, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Distance.
	resp, err := hs.Client().Get(hs.URL + "/v1/distance?s=0&t=5")
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Distance  uint32 `json:"distance"`
		Method    string `json:"method"`
		Reachable bool   `json:"reachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !dr.Reachable || dr.Method == "" {
		t.Fatalf("distance response: %+v", dr)
	}

	// Path.
	resp, err = hs.Client().Get(hs.URL + "/v1/path?s=0&t=5")
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Path []uint32 `json:"path"`
		Hops int      `json:"hops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Path) == 0 || pr.Hops != len(pr.Path)-1 {
		t.Fatalf("path response: %+v", pr)
	}
	if uint32(pr.Hops) != dr.Distance {
		t.Fatalf("path hops %d != distance %d", pr.Hops, dr.Distance)
	}

	// Stats and health.
	resp, err = hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Nodes     int `json:"nodes"`
		Landmarks int `json:"landmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Nodes != 400 || sr.Landmarks == 0 {
		t.Fatalf("stats: %+v", sr)
	}
	resp, err = hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Errors.
	resp, err = hs.Client().Get(hs.URL + "/v1/distance?s=abc&t=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad param status %d", resp.StatusCode)
	}
	resp, err = hs.Client().Get(hs.URL + "/v1/distance?s=999999&t=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("out-of-range status %d", resp.StatusCode)
	}
}

func TestClientClosed(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Distance(0, 1); !errors.Is(err, qclient.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestAdminUpdateEndpoint covers the HTTP mutation path: gating,
// validation, and that applied batches are visible to queries.
func TestAdminUpdateEndpoint(t *testing.T) {
	g := gen.HolmeKim(xrand.New(4), 300, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Disabled by default.
	locked := httptest.NewServer(New(o, Config{}).Handler())
	defer locked.Close()
	resp, err := http.Post(locked.URL+"/v1/admin/update", "application/json",
		strings.NewReader(`{"edges":[[0,200]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled endpoint returned %d, want 403", resp.StatusCode)
	}

	s := New(o, Config{AllowUpdates: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/update", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	// Find a non-edge to insert.
	var u, v uint32
	found := false
	for u = 0; u < 300 && !found; u++ {
		for v = u + 2; v < 300; v++ {
			if !g.HasEdge(u, v) {
				found = true
				u--
				break
			}
		}
	}
	u++
	resp, out := post(fmt.Sprintf(`{"add_nodes":1,"edges":[[%d,%d],[300,0]]}`, u, v))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update returned %d: %v", resp.StatusCode, out)
	}
	if out["epoch"].(float64) != 1 || out["nodes"].(float64) != 301 {
		t.Fatalf("unexpected response: %v", out)
	}
	if d, _, _ := s.Oracle().Distance(u, v); d != 1 {
		t.Fatalf("inserted edge not visible: d=%d", d)
	}
	if d, _, _ := s.Oracle().Distance(300, 0); d != 1 {
		t.Fatalf("added node not wired: d=%d", d)
	}
	if m := s.Metrics(); m.Updates != 1 || m.Epoch != 1 {
		t.Fatalf("metrics: %+v", m)
	}

	// Malformed bodies are rejected.
	if resp, _ := post(`{"edges":[[0]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short edge accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"edges":[[0,999]]}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("out-of-range edge: %d", resp.StatusCode)
	}

	// Churn ops: delete the edge just inserted, then restore it with a
	// weight-1 upsert.
	resp, out = post(fmt.Sprintf(`{"del_edges":[[%d,%d]]}`, u, v))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete returned %d: %v", resp.StatusCode, out)
	}
	if d, _, _ := s.Oracle().Distance(u, v); d == 1 {
		t.Fatal("deleted edge still answers d=1")
	}
	// Deleting it again is a typed 404, and nothing is applied.
	resp, out = post(fmt.Sprintf(`{"del_edges":[[%d,%d]]}`, u, v))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent delete returned %d: %v", resp.StatusCode, out)
	}
	if out["error_code"] != "edge_not_found" {
		t.Fatalf("absent delete code: %v", out)
	}
	resp, out = post(fmt.Sprintf(`{"set_weights":[[%d,%d,1]]}`, u, v))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert returned %d: %v", resp.StatusCode, out)
	}
	if d, _, _ := s.Oracle().Distance(u, v); d != 1 {
		t.Fatalf("upsert did not restore the edge: d=%d", d)
	}
	// del_nodes isolates a node wholesale.
	resp, out = post(`{"del_nodes":[300]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("del_nodes returned %d: %v", resp.StatusCode, out)
	}
	if d, _, _ := s.Oracle().Distance(300, 0); d != core.NoDist {
		t.Fatalf("retired node still reachable: d=%d", d)
	}

	// Admin save writes a loadable v1 file of the churned oracle.
	savePath := filepath.Join(t.TempDir(), "churned.vco")
	body, _ := json.Marshal(map[string]string{"path": savePath})
	sresp, err := http.Post(ts.URL+"/v1/admin/save", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("save returned %d", sresp.StatusCode)
	}
	loaded, err := core.LoadOracleFile(savePath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph().NumNodes() != s.Oracle().Graph().NumNodes() {
		t.Fatal("saved oracle has a different graph")
	}
	// Save is gated like update.
	lresp, err := http.Post(locked.URL+"/v1/admin/save", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusForbidden {
		t.Fatalf("ungated save returned %d", lresp.StatusCode)
	}
}

// sampleChurnEdge picks one live edge of g that none of the pending
// inserts name, so adding it to Update.DelEdges cannot conflict.
func sampleChurnEdge(r *xrand.Rand, g *graph.Graph, ins [][2]uint32) ([2]uint32, bool) {
	n := uint32(g.NumNodes())
	for tries := 0; tries < 8; tries++ {
		u := r.Uint32n(n)
		adj := g.Neighbors(u)
		if len(adj) == 0 {
			continue
		}
		v := adj[r.Uint32n(uint32(len(adj)))]
		conflict := false
		for _, e := range ins {
			if (e[0] == u && e[1] == v) || (e[0] == v && e[1] == u) {
				conflict = true
				break
			}
		}
		if !conflict {
			return [2]uint32{u, v}, true
		}
	}
	return [2]uint32{}, false
}

// TestQueriesDuringUpdates races TCP clients against a stream of update
// batches (meaningful under -race): every response must be internally
// consistent with some epoch.
func TestQueriesDuringUpdates(t *testing.T) {
	s, addr := startServer(t, Config{AllowUpdates: true})
	n := uint32(s.Oracle().Graph().NumNodes())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := qclient.Dial(addr, qclient.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			r := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Query only nodes of the original graph: they exist in
				// every epoch.
				s0, t0 := r.Uint32n(n), r.Uint32n(n)
				if _, _, err := c.Distance(s0, t0); err != nil {
					t.Errorf("Distance(%d,%d): %v", s0, t0, err)
					return
				}
			}
		}(uint64(w) + 7)
	}

	r := xrand.New(50)
	for i := 0; i < 10; i++ {
		gg := s.Oracle().Graph()
		cur := uint32(gg.NumNodes())
		upd := core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{cur, r.Uint32n(cur)}, {r.Uint32n(cur), r.Uint32n(cur)}},
		}
		// Mixed churn: also delete a live edge the batch does not insert.
		if e, ok := sampleChurnEdge(r, gg, upd.Edges); ok {
			upd.DelEdges = append(upd.DelEdges, e)
		}
		if _, _, err := s.ApplyUpdates(upd); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m := s.Metrics(); m.Epoch != 10 {
		t.Fatalf("epoch %d, want 10", m.Epoch)
	}
}

// TestBatchRoundTrip cross-checks the TCP batch path (qclient.Batch)
// against per-pair Distance calls: same distances, same methods, and
// per-target errors carried as item codes without failing the batch.
func TestBatchRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r := xrand.New(5)
	for trial := 0; trial < 5; trial++ {
		src := r.Uint32n(400)
		ts := []uint32{src, 999999} // same-node and out-of-range targets
		for len(ts) < 50 {
			ts = append(ts, r.Uint32n(400))
		}
		items, err := c.Batch(src, ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, tgt := range ts {
			d, m, serr := s.Oracle().Distance(src, tgt)
			if serr != nil {
				if items[i].Err == nil {
					t.Fatalf("item %d: missing error for (%d,%d)", i, src, tgt)
				}
				var werr *wire.ErrorResponse
				if !errors.As(items[i].Err, &werr) || werr.Code != wire.CodeOutOfRange {
					t.Fatalf("item %d: err = %v, want out-of-range code", i, items[i].Err)
				}
				continue
			}
			if items[i].Err != nil || items[i].Dist != d || items[i].Method != uint8(m) {
				t.Fatalf("item %d: (%d,%d,%v), single query says (%d,%v)",
					i, items[i].Dist, items[i].Method, items[i].Err, d, m)
			}
		}
	}
	// The connection survives per-target errors.
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// A whole-batch failure (out-of-range source) is a call error.
	if _, err := c.Batch(999999, []uint32{1, 2}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

// TestBatchHTTP cross-checks POST /v1/batch against per-pair answers,
// inline per-target errors included.
func TestBatchHTTP(t *testing.T) {
	s, _ := startServer(t, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"s":3,"ts":[3,7,11,999999]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		S       uint32 `json:"s"`
		Count   int    `json:"count"`
		Results []struct {
			T         uint32 `json:"t"`
			Distance  uint32 `json:"distance"`
			Method    string `json:"method"`
			Reachable bool   `json:"reachable"`
			Error     string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.S != 3 || out.Count != 4 || len(out.Results) != 4 {
		t.Fatalf("response shape: %+v", out)
	}
	for i, tgt := range []uint32{3, 7, 11, 999999} {
		it := out.Results[i]
		if it.T != tgt {
			t.Fatalf("result %d names target %d, want %d", i, it.T, tgt)
		}
		d, m, serr := s.Oracle().Distance(3, tgt)
		if serr != nil {
			if it.Error == "" {
				t.Fatalf("result %d: missing inline error", i)
			}
			continue
		}
		if it.Error != "" || it.Method != m.String() || (it.Reachable && it.Distance != d) {
			t.Fatalf("result %d = %+v, single query says (%d, %v)", i, it, d, m)
		}
	}

	// Malformed bodies are rejected (and counted, see the metrics test).
	resp, err = hs.Client().Post(hs.URL+"/v1/batch", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", resp.StatusCode)
	}
}

// TestErrorMetrics pins the metrics bugfix: every handler error —
// TCP distance/path/batch and their HTTP twins — must increment the
// error counter, and /v1/stats must expose it.
func TestErrorMetrics(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := s.Metrics().Errors
	c.Distance(0, 999999)           // TCP distance error
	c.Path(999999, 0)               // TCP path error
	c.Batch(0, []uint32{1, 999999}) // one per-target error
	c.Batch(999999, []uint32{1})    // whole-batch error
	want := before + 4

	if got := s.Metrics().Errors; got != want {
		t.Fatalf("TCP errors = %d, want %d", got, want)
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	get := func(path string) {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/v1/distance?s=abc&t=1")    // parse error
	get("/v1/distance?s=999999&t=1") // out of range
	get("/v1/path?s=0&t=999999")     // out of range
	want += 3

	if got := s.Metrics().Errors; got != want {
		t.Fatalf("HTTP errors = %d, want %d", got, want)
	}

	// The stats payload exposes the counter.
	resp, err := hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Errors int64 `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Errors != want {
		t.Fatalf("stats errors = %d, want %d", st.Errors, want)
	}
}

// TestBatchDuringUpdates races TCP batch queries against update batches
// (meaningful under -race): the server answers each batch from one
// pinned snapshot, so original-node queries never error mid-swap.
func TestBatchDuringUpdates(t *testing.T) {
	s, addr := startServer(t, Config{AllowUpdates: true})
	n := uint32(s.Oracle().Graph().NumNodes())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := qclient.Dial(addr, qclient.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			r := xrand.New(seed)
			ts := make([]uint32, 24)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range ts {
					ts[i] = r.Uint32n(n) // original nodes exist in every epoch
				}
				items, err := c.Batch(r.Uint32n(n), ts)
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for i, it := range items {
					if it.Err != nil {
						t.Errorf("item %d (t=%d): %v", i, ts[i], it.Err)
						return
					}
				}
			}
		}(uint64(w) + 13)
	}

	r := xrand.New(90)
	for i := 0; i < 10; i++ {
		gg := s.Oracle().Graph()
		cur := uint32(gg.NumNodes())
		upd := core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{cur, r.Uint32n(cur)}},
		}
		// Mixed churn: also delete a live edge the batch does not insert.
		if e, ok := sampleChurnEdge(r, gg, upd.Edges); ok {
			upd.DelEdges = append(upd.DelEdges, e)
		}
		if _, _, err := s.ApplyUpdates(upd); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m := s.Metrics(); m.Epoch != 10 {
		t.Fatalf("epoch %d, want 10", m.Epoch)
	}
}

// startGridServer is startServer over a long 2×600 grid whose corner
// pair (0, 1199) deterministically misses the tables — the fixture for
// budget and deadline tests that need a real fallback search.
func startGridServer(t *testing.T, cfg Config) (*Server, string, uint32, uint32) {
	t.Helper()
	g := gen.Grid(2, 600)
	o, err := core.Build(g, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s, u := uint32(0), uint32(g.NumNodes()-1)
	if _, m, err := o.Distance(s, u); err != nil || m.Resolved() {
		t.Fatalf("grid corner pair resolved from tables (%v, %v)", m, err)
	}
	srv := New(o, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return srv, ln.Addr().String(), s, u
}

// TestQueryV2RoundTrip drives the v2 frame over TCP: default-policy
// equivalence with the server oracle, paths, batches, cost counters,
// epoch, and typed top-level errors.
func TestQueryV2RoundTrip(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	o := srv.Oracle()
	ctx := context.Background()

	r := xrand.New(5)
	for i := 0; i < 50; i++ {
		a, b := r.Uint32n(400), r.Uint32n(400)
		wantD, wantM, _ := o.Distance(a, b)
		res, err := c.Query(ctx, qclient.QuerySpec{S: a, T: b, WantStats: true})
		if err != nil {
			t.Fatal(err)
		}
		it := res.Items[0]
		if it.Err != nil || it.Dist != wantD || core.Method(it.Method) != wantM {
			t.Fatalf("Query(%d,%d) = (%d, %v, %v), oracle says (%d, %v)",
				a, b, it.Dist, core.Method(it.Method), it.Err, wantD, wantM)
		}
		if res.Cost.Lookups == 0 && wantM != core.MethodSame {
			t.Fatalf("WantStats returned empty cost for method %v", wantM)
		}
	}

	// Path flag round-trips the witness path.
	p, _, _ := o.Path(3, 77)
	res, err := c.Query(ctx, qclient.QuerySpec{S: 3, T: 77, WantPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Items[0].Path; len(got) != len(p) {
		t.Fatalf("path %v, oracle says %v", got, p)
	}

	// One-to-many mirrors DistanceMany, inline per-target errors
	// included, and maps codes back to the taxonomy.
	ts := []uint32{1, 2, 99999, 3}
	want, err := o.DistanceMany(7, ts)
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(ctx, qclient.QuerySpec{S: 7, Ts: ts})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != len(ts) {
		t.Fatalf("%d items for %d targets", len(res.Items), len(ts))
	}
	for i, it := range res.Items {
		if it.Dist != want[i].Dist {
			t.Fatalf("item %d: dist %d, want %d", i, it.Dist, want[i].Dist)
		}
		if (it.Err == nil) != (want[i].Err == nil) {
			t.Fatalf("item %d: err %v, want %v", i, it.Err, want[i].Err)
		}
	}
	if !errors.Is(res.Items[2].Err, core.ErrNodeRange) {
		t.Fatalf("out-of-range item err %v, want ErrNodeRange", res.Items[2].Err)
	}

	// Top-level errors keep the v1 ErrorResponse shape and map to the
	// taxonomy through the client.
	if _, err := c.Query(ctx, qclient.QuerySpec{S: 99999, T: 0}); !errors.Is(err, core.ErrNodeRange) {
		t.Fatalf("out-of-range source: %v, want ErrNodeRange", err)
	}
	var werr *wire.ErrorResponse
	if _, err := c.Query(ctx, qclient.QuerySpec{S: 99999, T: 0}); !errors.As(err, &werr) || werr.Code != wire.CodeOutOfRange {
		t.Fatalf("out-of-range source wire error: %v", err)
	}
}

// TestQueryV2BudgetAndDeadlineTCP exercises the budget and deadline
// paths end-to-end over TCP against a deterministic fallback pair.
func TestQueryV2BudgetAndDeadlineTCP(t *testing.T) {
	hold := make(chan struct{})
	var once sync.Once
	cfg := Config{testHookQuery: func(ctx context.Context) {
		select {
		case <-hold:
			<-ctx.Done() // second phase: park until the deadline fires
		default:
			once.Do(func() {}) // first phase: pass through
		}
	}}
	_, addr, s, u := startGridServer(t, cfg)
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Budget 1: the far pair cannot resolve; the item carries the typed
	// error and the method tells the client what the distance means.
	res, err := c.Query(ctx, qclient.QuerySpec{S: s, Ts: []uint32{s + 1, u}, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if it := res.Items[0]; it.Err != nil {
		t.Fatalf("near target hit the budget: %v", it.Err)
	}
	if it := res.Items[1]; !errors.Is(it.Err, core.ErrBudgetExceeded) {
		t.Fatalf("far target err %v, want ErrBudgetExceeded", it.Err)
	}

	// Deadline: the hook parks the request on ctx.Done, so the frame's
	// deadline-ms is what unblocks it; the oracle then reports the
	// cancellation as a typed per-item error.
	close(hold)
	qctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err = c.Query(qctx, qclient.QuerySpec{S: s, T: u})
	if err != nil {
		t.Fatalf("deadline query: %v", err)
	}
	if it := res.Items[0]; !errors.Is(it.Err, core.ErrCanceled) {
		t.Fatalf("deadline item err %v, want ErrCanceled", it.Err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to propagate", elapsed)
	}
}

// TestQueryV2HTTP covers POST /v2/query: single and many targets,
// paths, cost, typed error codes for budget exhaustion and bad input.
func TestQueryV2HTTP(t *testing.T) {
	g := gen.Grid(2, 600)
	o, err := core.Build(g, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(o, Config{})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	far := uint32(g.NumNodes() - 1)

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(h.URL+"/v2/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	// Plain single query answers like /v1/distance.
	code, m := post(`{"s":0,"t":1,"want_stats":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, m)
	}
	results := m["results"].([]any)
	first := results[0].(map[string]any)
	if first["reachable"] != true || first["distance"].(float64) != 1 {
		t.Fatalf("results = %v", results)
	}
	if m["cost"] == nil {
		t.Fatalf("want_stats did not return cost: %v", m)
	}

	// Budgeted far pair: HTTP 200 with the typed inline code.
	code, m = post(fmt.Sprintf(`{"s":0,"t":%d,"budget":1,"policy":"full"}`, far))
	if code != http.StatusOK {
		t.Fatalf("budget status %d: %v", code, m)
	}
	first = m["results"].([]any)[0].(map[string]any)
	if first["error_code"] != "budget_exceeded" {
		t.Fatalf("budget result = %v", first)
	}

	// Batch with an out-of-range target: inline node_range item.
	code, m = post(`{"s":0,"ts":[1,999999],"want_path":true}`)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %v", code, m)
	}
	items := m["results"].([]any)
	if items[0].(map[string]any)["path"] == nil {
		t.Fatalf("want_path missing: %v", items[0])
	}
	if items[1].(map[string]any)["error_code"] != "node_range" {
		t.Fatalf("range item = %v", items[1])
	}

	// Validation failures are typed too.
	for body, wantStatus := range map[string]int{
		`{"s":0}`:                        http.StatusBadRequest, // no target
		`{"s":0,"t":1,"ts":[2]}`:         http.StatusBadRequest, // both
		`{"s":0,"t":1,"policy":"warp"}`:  http.StatusBadRequest,
		`{"s":0,"t":1,"budget":-4}`:      http.StatusBadRequest,
		`{"s":0,"t":1,"deadline_ms":-1}`: http.StatusBadRequest,
		`{"s":999999,"t":1}`:             http.StatusBadRequest, // node_range
	} {
		code, m := post(body)
		if code != wantStatus {
			t.Fatalf("%s: status %d (%v), want %d", body, code, m, wantStatus)
		}
		if m["error_code"] == "" {
			t.Fatalf("%s: missing error_code: %v", body, m)
		}
	}
}

// TestQueryV2HTTPDeadline holds a request on its context via the test
// hook and asserts the deadline surfaces as the typed "canceled" code.
func TestQueryV2HTTPDeadline(t *testing.T) {
	g := gen.Grid(2, 100)
	o, err := core.Build(g, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(o, Config{testHookQuery: func(ctx context.Context) { <-ctx.Done() }})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()

	resp, err := http.Post(h.URL+"/v2/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"s":0,"t":%d,"deadline_ms":30}`, g.NumNodes()-1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	first := m["results"].([]any)[0].(map[string]any)
	if first["error_code"] != "canceled" {
		t.Fatalf("result = %v", first)
	}
}

// TestShutdownDrainsInFlightQuery pins the graceful path: a query held
// in flight blocks Shutdown until it completes, and the answer still
// reaches the client.
func TestShutdownDrainsInFlightQuery(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	cfg := Config{testHookQuery: func(ctx context.Context) {
		close(entered)
		<-release
	}}
	g := gen.HolmeKim(xrand.New(1), 200, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(o, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = srv.Serve(ln) }()

	c, err := qclient.Dial(ln.Addr().String(), qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type qres struct {
		res *qclient.QueryResult
		err error
	}
	queryDone := make(chan qres, 1)
	go func() {
		res, err := c.Query(context.Background(), qclient.QuerySpec{S: 0, T: 1})
		queryDone <- qres{res, err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a query in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	q := <-queryDone
	if q.err != nil || q.res.Items[0].Err != nil {
		t.Fatalf("in-flight query lost to shutdown: %v / %+v", q.err, q.res)
	}
	c.Close() // connection gone: the drain can finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drained shutdown returned %v", err)
	}
	<-serveDone
}

// TestShutdownForcedCancelsInFlightQuery pins the forced path: when the
// drain window is already spent, Shutdown cancels the in-flight request
// context — the hook (standing in for a long fallback search, which
// polls the same context) observes it and the server comes down without
// waiting on the query's natural completion.
func TestShutdownForcedCancelsInFlightQuery(t *testing.T) {
	entered := make(chan struct{})
	observed := make(chan struct{})
	cfg := Config{testHookQuery: func(ctx context.Context) {
		close(entered)
		<-ctx.Done()
		close(observed)
	}}
	g := gen.HolmeKim(xrand.New(1), 200, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(o, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = srv.Serve(ln) }()

	c, err := qclient.Dial(ln.Addr().String(), qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		_, _ = c.Query(context.Background(), qclient.QuerySpec{S: 0, T: 1})
	}()
	<-entered

	expired, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-expired.Done()
	if err := srv.Shutdown(expired); err == nil {
		t.Fatal("forced shutdown reported a clean drain")
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("forced shutdown never canceled the in-flight request context")
	}
	<-serveDone
}

// TestQueryV2FrameValidationTCP pins the TCP-side request validation:
// unknown policies and oversized deadlines are refused as bad-request
// frames — matching the HTTP layer — and rejected frames do not
// inflate the queries_served counter.
func TestQueryV2FrameValidationTCP(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := srv.Metrics().Queries

	if _, err := c.Query(context.Background(), qclient.QuerySpec{S: 0, T: 1, Policy: core.Policy(9)}); err == nil {
		t.Fatal("unknown policy accepted over TCP")
	}
	// Oversized deadline: build the frame directly (the client API
	// derives DeadlineMS from ctx and cannot produce one).
	huge, err := wireRoundTrip(t, addr, &wire.QueryRequest{S: 0, T: 1, DeadlineMS: maxQueryDeadlineMS + 1})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := huge.(*wire.ErrorResponse); !ok || e.Code != wire.CodeBadRequest {
		t.Fatalf("oversized deadline: %+v, want bad-request", huge)
	}
	if got := srv.Metrics().Queries; got != before {
		t.Fatalf("rejected frames counted as queries: %d -> %d", before, got)
	}
	if srv.Metrics().Errors < 2 {
		t.Fatalf("rejected frames not counted as errors: %+v", srv.Metrics())
	}
}

// wireRoundTrip sends one raw frame and reads one response.
func wireRoundTrip(t *testing.T, addr string, msg wire.Message) (wire.Message, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteMessage(conn, msg); err != nil {
		return nil, err
	}
	return wire.ReadMessage(conn)
}

// TestStatsLatencyHistograms pins the /v1/stats latency surface: the
// JSON field names, the per-endpoint keys, and the histogram's basic
// sanity (counts match the traffic sent, quantiles are monotone,
// endpoints with no traffic are absent).
func TestStatsLatencyHistograms(t *testing.T) {
	s, addr := startServer(t, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Traffic: 10 TCP distances, 3 HTTP paths, one v2 batch of 5.
	for i := uint32(0); i < 10; i++ {
		if _, _, err := c.Distance(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/path?s=%d&t=%d", hs.URL, i, i+5))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if _, err := c.Query(context.Background(), qclient.QuerySpec{S: 1, Ts: []uint32{2, 3, 4, 5, 6}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Latency map[string]map[string]float64 `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	// Pin the endpoint keys and the per-endpoint field names.
	wantCounts := map[string]float64{"distance": 10, "path": 3, "batch": 1, "query": 1}
	if len(st.Latency) != len(wantCounts) {
		t.Fatalf("latency endpoints %v, want exactly %v", st.Latency, wantCounts)
	}
	for ep, wantCount := range wantCounts {
		h, ok := st.Latency[ep]
		if !ok {
			t.Fatalf("latency missing endpoint %q: %v", ep, st.Latency)
		}
		for _, field := range []string{"count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"} {
			if _, ok := h[field]; !ok {
				t.Fatalf("latency[%q] missing field %q: %v", ep, field, h)
			}
		}
		if len(h) != 6 {
			t.Fatalf("latency[%q] has unexpected fields: %v", ep, h)
		}
		if h["count"] != wantCount {
			t.Fatalf("latency[%q].count = %v, want %v", ep, h["count"], wantCount)
		}
		if !(h["p50_us"] <= h["p95_us"] && h["p95_us"] <= h["p99_us"] && h["p99_us"] <= h["max_us"]) {
			t.Fatalf("latency[%q] quantiles not monotone: %v", ep, h)
		}
	}
}

// TestAdmissionControlSheds holds one fallback query in flight and
// verifies that, over MaxInFlight, the next fallback-permitting query
// is degraded to the landmark estimate (typed by its method, counted in
// Shed) instead of queueing behind the search — and that a table-only
// request is never upgraded by admission control.
func TestAdmissionControlSheds(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	var park atomic.Bool
	cfg := Config{MaxInFlight: 1, testHookQuery: func(ctx context.Context) {
		if park.Load() {
			entered <- struct{}{}
			<-release
		}
	}}
	srv, addr, a, b := startGridServer(t, cfg)

	c1, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx := context.Background()

	// Hold one admitted query in flight.
	park.Store(true)
	var wg sync.WaitGroup
	wg.Add(1)
	var heldErr error
	go func() {
		defer wg.Done()
		_, heldErr = c1.Query(ctx, qclient.QuerySpec{S: a, T: b, Policy: core.PolicyFull})
	}()
	<-entered
	park.Store(false)

	// The second fallback query must shed to the estimate: answered in
	// microseconds with the landmark upper-bound method, not parked
	// behind the held slot.
	res, err := c2.Query(ctx, qclient.QuerySpec{S: a, T: b, Policy: core.PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	it := res.Items[0]
	if it.Err != nil || core.Method(it.Method) != core.MethodFallbackEstimate {
		t.Fatalf("shed query answered (%v, %v), want landmark estimate", core.Method(it.Method), it.Err)
	}
	wantD, _, _ := srv.Oracle().Distance(a, b)
	if it.Dist < wantD {
		t.Fatalf("shed estimate %d below true distance %d", it.Dist, wantD)
	}
	if m := srv.Metrics(); m.Shed != 1 || m.InFlight < 1 {
		t.Fatalf("metrics after shed: %+v", m)
	}

	// A table-only request is already cheap: it passes through admission
	// control unchanged even over the limit.
	res, err = c2.Query(ctx, qclient.QuerySpec{S: a, T: b, Policy: core.PolicyTableOnly})
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Method(res.Items[0].Method); got != core.MethodNone {
		t.Fatalf("table-only under overload answered %v, want none", got)
	}
	if m := srv.Metrics(); m.Shed != 1 {
		t.Fatalf("table-only request counted as shed: %+v", m)
	}

	close(release)
	wg.Wait()
	if heldErr != nil {
		t.Fatalf("held query: %v", heldErr)
	}
	if m := srv.Metrics(); m.InFlight != 0 {
		t.Fatalf("in-flight gauge leaked: %+v", m)
	}

	// The /v1/stats surface exposes the shed counter.
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Shed     *int64 `json:"shed"`
		InFlight *int64 `json:"in_flight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shed == nil || *st.Shed != 1 || st.InFlight == nil {
		t.Fatalf("/v1/stats shed/in_flight: %+v", st)
	}
}

// TestQueryV2ParallelRoundTrip sends one-to-many requests with the
// Parallel knob over both surfaces and requires answers identical to
// the sequential pass (the engine's bit-identity property, observed
// end to end).
func TestQueryV2ParallelRoundTrip(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	r := xrand.New(11)
	ts := make([]uint32, 3*core.BatchParallelMinTargets)
	for i := range ts {
		ts[i] = r.Uint32n(400)
	}
	seq, err := c.Query(ctx, qclient.QuerySpec{S: 5, Ts: ts, WantPath: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.Query(ctx, qclient.QuerySpec{S: 5, Ts: ts, WantPath: true, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Items) != len(seq.Items) {
		t.Fatalf("%d items, want %d", len(par.Items), len(seq.Items))
	}
	for i := range seq.Items {
		w, g := seq.Items[i], par.Items[i]
		if w.Dist != g.Dist || w.Method != g.Method || len(w.Path) != len(g.Path) {
			t.Fatalf("item %d: parallel (%d,%d) vs sequential (%d,%d)",
				i, g.Dist, g.Method, w.Dist, w.Method)
		}
	}

	// HTTP surface accepts the knob too (and rejects a negative one).
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	body := `{"s":5,"ts":[1,2,3],"parallel":4}`
	resp, err := http.Post(hs.URL+"/v2/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel v2 query: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/v2/query", "application/json", strings.NewReader(`{"s":5,"t":1,"parallel":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative parallel accepted: HTTP %d", resp.StatusCode)
	}
}
