package qserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/qclient"
	"vicinity/internal/traverse"
	"vicinity/internal/wire"
	"vicinity/internal/xrand"
)

// startServer builds a small oracle, starts a TCP server on a loopback
// port, and returns the server plus its address. Cleanup is registered
// on t.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	g := gen.HolmeKim(xrand.New(1), 400, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-done
	})
	return s, ln.Addr().String()
}

func TestDistanceAndPathRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g := s.Oracle().Graph()
	ws := traverse.NewWorkspace(g)
	r := xrand.New(2)
	for i := 0; i < 100; i++ {
		a, b := r.Uint32n(400), r.Uint32n(400)
		want := ws.BFSDist(a, b)
		got, _, err := c.Distance(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", a, b, got, want)
		}
		p, _, err := c.Path(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want == traverse.NoDist {
			if p != nil {
				t.Fatalf("path for unreachable pair: %v", p)
			}
			continue
		}
		if uint32(len(p)-1) != want || p[0] != a || p[len(p)-1] != b {
			t.Fatalf("bad path %v for (%d,%d), want %d hops", p, a, b, want)
		}
	}
}

func TestPingAndStats(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Two queries, then stats must reflect them.
	if _, _, err := c.Distance(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Distance(1, 2); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 400 || st.QueriesServed < 2 || st.Landmarks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutOfRangeError(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Distance(0, 100000)
	var werr *wire.ErrorResponse
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want wire.ErrorResponse", err)
	}
	if werr.Code != wire.CodeOutOfRange {
		t.Fatalf("code = %d, want %d", werr.Code, wire.CodeOutOfRange)
	}
	// The connection survives an application-level error.
	if _, _, err := c.Distance(0, 1); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Config{})
	g := s.Oracle().Graph()
	ws := traverse.NewWorkspace(g)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := qclient.Dial(addr, qclient.Options{})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			r := xrand.New(seed)
			for i := 0; i < 50; i++ {
				a, b := r.Uint32n(400), r.Uint32n(400)
				got, _, err := c.Distance(a, b)
				if err != nil {
					errCh <- err
					return
				}
				_ = got
			}
		}(uint64(w + 10))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Sanity: one deterministic check after the storm.
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := c.Distance(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := ws.BFSDist(3, 7); got != want {
		t.Fatalf("after concurrency: %d, want %d", got, want)
	}
	if m := s.Metrics(); m.Queries < 400 || m.TotalConns < 8 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPool(t *testing.T) {
	_, addr := startServer(t, Config{})
	p, err := qclient.NewPool(addr, 4, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 25; i++ {
				if _, _, err := p.Distance(ctx, r.Uint32n(400), r.Uint32n(400)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestConnectionCap(t *testing.T) {
	_, addr := startServer(t, Config{MaxConns: 1})
	c1, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	// Second connection must be refused with CodeUnavailable.
	c2, err := qclient.Dial(addr, qclient.Options{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err) // dial succeeds; refusal arrives as an error frame
	}
	defer c2.Close()
	_, err = c2.Ping()
	var werr *wire.ErrorResponse
	if !errors.As(err, &werr) || werr.Code != wire.CodeUnavailable {
		t.Fatalf("second connection: err = %v, want unavailable", err)
	}
}

func TestMalformedFrameGetsErrorResponse(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame with a bad version byte.
	raw := wire.Marshal(&wire.PingRequest{Token: 1})
	raw[4] = 99
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatalf("no error frame: %v", err)
	}
	werr, ok := resp.(*wire.ErrorResponse)
	if !ok || werr.Code != wire.CodeBadRequest {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestShutdownUnblocksServe(t *testing.T) {
	g := gen.Path(10)
	o, err := core.Build(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(o, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

func TestHTTPGateway(t *testing.T) {
	s, _ := startServer(t, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Distance.
	resp, err := hs.Client().Get(hs.URL + "/v1/distance?s=0&t=5")
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Distance  uint32 `json:"distance"`
		Method    string `json:"method"`
		Reachable bool   `json:"reachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !dr.Reachable || dr.Method == "" {
		t.Fatalf("distance response: %+v", dr)
	}

	// Path.
	resp, err = hs.Client().Get(hs.URL + "/v1/path?s=0&t=5")
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Path []uint32 `json:"path"`
		Hops int      `json:"hops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Path) == 0 || pr.Hops != len(pr.Path)-1 {
		t.Fatalf("path response: %+v", pr)
	}
	if uint32(pr.Hops) != dr.Distance {
		t.Fatalf("path hops %d != distance %d", pr.Hops, dr.Distance)
	}

	// Stats and health.
	resp, err = hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Nodes     int `json:"nodes"`
		Landmarks int `json:"landmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Nodes != 400 || sr.Landmarks == 0 {
		t.Fatalf("stats: %+v", sr)
	}
	resp, err = hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Errors.
	resp, err = hs.Client().Get(hs.URL + "/v1/distance?s=abc&t=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad param status %d", resp.StatusCode)
	}
	resp, err = hs.Client().Get(hs.URL + "/v1/distance?s=999999&t=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("out-of-range status %d", resp.StatusCode)
	}
}

func TestClientClosed(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Distance(0, 1); !errors.Is(err, qclient.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestAdminUpdateEndpoint covers the HTTP mutation path: gating,
// validation, and that applied batches are visible to queries.
func TestAdminUpdateEndpoint(t *testing.T) {
	g := gen.HolmeKim(xrand.New(4), 300, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Disabled by default.
	locked := httptest.NewServer(New(o, Config{}).Handler())
	defer locked.Close()
	resp, err := http.Post(locked.URL+"/v1/admin/update", "application/json",
		strings.NewReader(`{"edges":[[0,200]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled endpoint returned %d, want 403", resp.StatusCode)
	}

	s := New(o, Config{AllowUpdates: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/update", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	// Find a non-edge to insert.
	var u, v uint32
	found := false
	for u = 0; u < 300 && !found; u++ {
		for v = u + 2; v < 300; v++ {
			if !g.HasEdge(u, v) {
				found = true
				u--
				break
			}
		}
	}
	u++
	resp, out := post(fmt.Sprintf(`{"add_nodes":1,"edges":[[%d,%d],[300,0]]}`, u, v))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update returned %d: %v", resp.StatusCode, out)
	}
	if out["epoch"].(float64) != 1 || out["nodes"].(float64) != 301 {
		t.Fatalf("unexpected response: %v", out)
	}
	if d, _, _ := s.Oracle().Distance(u, v); d != 1 {
		t.Fatalf("inserted edge not visible: d=%d", d)
	}
	if d, _, _ := s.Oracle().Distance(300, 0); d != 1 {
		t.Fatalf("added node not wired: d=%d", d)
	}
	if m := s.Metrics(); m.Updates != 1 || m.Epoch != 1 {
		t.Fatalf("metrics: %+v", m)
	}

	// Malformed bodies are rejected.
	if resp, _ := post(`{"edges":[[0]]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short edge accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"edges":[[0,999]]}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("out-of-range edge: %d", resp.StatusCode)
	}
}

// TestQueriesDuringUpdates races TCP clients against a stream of update
// batches (meaningful under -race): every response must be internally
// consistent with some epoch.
func TestQueriesDuringUpdates(t *testing.T) {
	s, addr := startServer(t, Config{AllowUpdates: true})
	n := uint32(s.Oracle().Graph().NumNodes())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := qclient.Dial(addr, qclient.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			r := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Query only nodes of the original graph: they exist in
				// every epoch.
				s0, t0 := r.Uint32n(n), r.Uint32n(n)
				if _, _, err := c.Distance(s0, t0); err != nil {
					t.Errorf("Distance(%d,%d): %v", s0, t0, err)
					return
				}
			}
		}(uint64(w) + 7)
	}

	r := xrand.New(50)
	for i := 0; i < 10; i++ {
		cur := uint32(s.Oracle().Graph().NumNodes())
		if _, _, err := s.ApplyUpdates(core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{cur, r.Uint32n(cur)}, {r.Uint32n(cur), r.Uint32n(cur)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m := s.Metrics(); m.Epoch != 10 {
		t.Fatalf("epoch %d, want 10", m.Epoch)
	}
}

// TestBatchRoundTrip cross-checks the TCP batch path (qclient.Batch)
// against per-pair Distance calls: same distances, same methods, and
// per-target errors carried as item codes without failing the batch.
func TestBatchRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r := xrand.New(5)
	for trial := 0; trial < 5; trial++ {
		src := r.Uint32n(400)
		ts := []uint32{src, 999999} // same-node and out-of-range targets
		for len(ts) < 50 {
			ts = append(ts, r.Uint32n(400))
		}
		items, err := c.Batch(src, ts)
		if err != nil {
			t.Fatal(err)
		}
		for i, tgt := range ts {
			d, m, serr := s.Oracle().Distance(src, tgt)
			if serr != nil {
				if items[i].Err == nil {
					t.Fatalf("item %d: missing error for (%d,%d)", i, src, tgt)
				}
				var werr *wire.ErrorResponse
				if !errors.As(items[i].Err, &werr) || werr.Code != wire.CodeOutOfRange {
					t.Fatalf("item %d: err = %v, want out-of-range code", i, items[i].Err)
				}
				continue
			}
			if items[i].Err != nil || items[i].Dist != d || items[i].Method != uint8(m) {
				t.Fatalf("item %d: (%d,%d,%v), single query says (%d,%v)",
					i, items[i].Dist, items[i].Method, items[i].Err, d, m)
			}
		}
	}
	// The connection survives per-target errors.
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// A whole-batch failure (out-of-range source) is a call error.
	if _, err := c.Batch(999999, []uint32{1, 2}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

// TestBatchHTTP cross-checks POST /v1/batch against per-pair answers,
// inline per-target errors included.
func TestBatchHTTP(t *testing.T) {
	s, _ := startServer(t, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"s":3,"ts":[3,7,11,999999]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		S       uint32 `json:"s"`
		Count   int    `json:"count"`
		Results []struct {
			T         uint32 `json:"t"`
			Distance  uint32 `json:"distance"`
			Method    string `json:"method"`
			Reachable bool   `json:"reachable"`
			Error     string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.S != 3 || out.Count != 4 || len(out.Results) != 4 {
		t.Fatalf("response shape: %+v", out)
	}
	for i, tgt := range []uint32{3, 7, 11, 999999} {
		it := out.Results[i]
		if it.T != tgt {
			t.Fatalf("result %d names target %d, want %d", i, it.T, tgt)
		}
		d, m, serr := s.Oracle().Distance(3, tgt)
		if serr != nil {
			if it.Error == "" {
				t.Fatalf("result %d: missing inline error", i)
			}
			continue
		}
		if it.Error != "" || it.Method != m.String() || (it.Reachable && it.Distance != d) {
			t.Fatalf("result %d = %+v, single query says (%d, %v)", i, it, d, m)
		}
	}

	// Malformed bodies are rejected (and counted, see the metrics test).
	resp, err = hs.Client().Post(hs.URL+"/v1/batch", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", resp.StatusCode)
	}
}

// TestErrorMetrics pins the metrics bugfix: every handler error —
// TCP distance/path/batch and their HTTP twins — must increment the
// error counter, and /v1/stats must expose it.
func TestErrorMetrics(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := s.Metrics().Errors
	c.Distance(0, 999999)           // TCP distance error
	c.Path(999999, 0)               // TCP path error
	c.Batch(0, []uint32{1, 999999}) // one per-target error
	c.Batch(999999, []uint32{1})    // whole-batch error
	want := before + 4

	if got := s.Metrics().Errors; got != want {
		t.Fatalf("TCP errors = %d, want %d", got, want)
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	get := func(path string) {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/v1/distance?s=abc&t=1")    // parse error
	get("/v1/distance?s=999999&t=1") // out of range
	get("/v1/path?s=0&t=999999")     // out of range
	want += 3

	if got := s.Metrics().Errors; got != want {
		t.Fatalf("HTTP errors = %d, want %d", got, want)
	}

	// The stats payload exposes the counter.
	resp, err := hs.Client().Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Errors int64 `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Errors != want {
		t.Fatalf("stats errors = %d, want %d", st.Errors, want)
	}
}

// TestBatchDuringUpdates races TCP batch queries against update batches
// (meaningful under -race): the server answers each batch from one
// pinned snapshot, so original-node queries never error mid-swap.
func TestBatchDuringUpdates(t *testing.T) {
	s, addr := startServer(t, Config{AllowUpdates: true})
	n := uint32(s.Oracle().Graph().NumNodes())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := qclient.Dial(addr, qclient.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			r := xrand.New(seed)
			ts := make([]uint32, 24)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range ts {
					ts[i] = r.Uint32n(n) // original nodes exist in every epoch
				}
				items, err := c.Batch(r.Uint32n(n), ts)
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for i, it := range items {
					if it.Err != nil {
						t.Errorf("item %d (t=%d): %v", i, ts[i], it.Err)
						return
					}
				}
			}
		}(uint64(w) + 13)
	}

	r := xrand.New(90)
	for i := 0; i < 10; i++ {
		cur := uint32(s.Oracle().Graph().NumNodes())
		if _, _, err := s.ApplyUpdates(core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{cur, r.Uint32n(cur)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if m := s.Metrics(); m.Epoch != 10 {
		t.Fatalf("epoch %d, want 10", m.Epoch)
	}
}
