package qserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/qclient"
	"vicinity/internal/wire"
)

// TestMuxNegotiationAndRoundTrip pins the hello handshake end to end:
// a mux-dialed client negotiates the feature, the server counts the
// session, and every request shape answers correctly over id-carrying
// frames.
func TestMuxNegotiationAndRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Muxed() {
		t.Fatal("mux feature not negotiated against a default server")
	}
	if got := s.Metrics().MuxConns; got != 1 {
		t.Fatalf("MuxConns = %d, want 1", got)
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	d, _, err := c.Distance(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	wantD, _, err := s.Oracle().Distance(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if d != wantD {
		t.Fatalf("muxed distance %d, want %d", d, wantD)
	}
	p, _, err := c.Path(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) == 0 || p[0] != 3 || p[len(p)-1] != 77 {
		t.Fatalf("muxed path endpoints wrong: %v", p)
	}
	items, err := c.Batch(1, []uint32{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("batch items = %d", len(items))
	}
	res, err := c.Query(context.Background(), qclient.QuerySpec{S: 5, T: 9, WantPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Err != nil {
		t.Fatalf("muxed v2 query: %+v", res.Items)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().MuxConns != 0 {
		if time.Now().After(deadline) {
			t.Fatal("MuxConns did not drop to 0 after close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMuxDisabledServerStaysSerial pins the negotiation-refused path: a
// DisableMux server acknowledges the hello without granting the bit,
// and the same connection keeps serving serially.
func TestMuxDisabledServerStaysSerial(t *testing.T) {
	s, addr := startServer(t, Config{DisableMux: true})
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Muxed() {
		t.Fatal("mux negotiated against a DisableMux server")
	}
	if _, _, err := c.Distance(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().MuxConns; got != 0 {
		t.Fatalf("MuxConns = %d, want 0", got)
	}
	// One connection total: the refused handshake must not redial.
	if got := s.Metrics().TotalConns; got != 1 {
		t.Fatalf("TotalConns = %d, want 1", got)
	}
}

// TestMuxOutOfOrderCompletion is the head-of-line proof at the protocol
// level: a v2 query held in flight by the test hook does not block a
// distance request issued after it on the same connection.
func TestMuxOutOfOrderCompletion(t *testing.T) {
	release := make(chan struct{})
	var held atomic.Int32
	cfg := Config{testHookQuery: func(ctx context.Context) {
		if held.Add(1) == 1 {
			<-release
		}
	}}
	_, addr := startServer(t, cfg)
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Muxed() {
		t.Fatal("mux not negotiated")
	}
	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), qclient.QuerySpec{S: 3, T: 77})
		slowDone <- err
	}()
	// Wait until the slow query is parked inside the server.
	deadline := time.Now().Add(2 * time.Second)
	for held.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	// The fast request must complete while the slow one is still held.
	fastDone := make(chan error, 1)
	go func() {
		_, _, err := c.Distance(1, 2)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast distance behind held query: %v", err)
		}
	case err := <-slowDone:
		t.Fatalf("slow query finished first (err=%v): no out-of-order completion", err)
	case <-time.After(5 * time.Second):
		t.Fatal("fast request blocked behind held query: head-of-line blocking")
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow query after release: %v", err)
	}
}

// TestMuxAbandonedRequestKeepsConnection pins the headline bugfix: a
// canceled in-flight request abandons its id, the connection survives,
// the next request works, and the late reply is discarded when the
// server eventually answers.
func TestMuxAbandonedRequestKeepsConnection(t *testing.T) {
	release := make(chan struct{})
	var held atomic.Int32
	cfg := Config{testHookQuery: func(ctx context.Context) {
		if held.Add(1) == 1 {
			<-release
		}
	}}
	s, addr := startServer(t, cfg)
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, qclient.QuerySpec{S: 3, T: 77})
		errCh <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for held.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("canceled in-flight request: err = %v, want core.ErrCanceled", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancellation not honored mid-flight")
	}
	// The connection survived the abandonment: the next request works
	// on the same conn — no teardown, no redial.
	if !c.Alive() {
		t.Fatal("client dead after an abandoned request")
	}
	if _, _, err := c.Distance(1, 2); err != nil {
		t.Fatalf("request after abandonment: %v", err)
	}
	if got := s.Metrics().TotalConns; got != 1 {
		t.Fatalf("TotalConns = %d, want 1 (abandonment must not redial)", got)
	}
	// Let the held query finish; its reply arrives under the abandoned
	// id and must be discarded, not matched to anything.
	close(release)
	deadline = time.Now().Add(2 * time.Second)
	for c.Discarded() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late reply to the abandoned id never discarded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := c.Distance(5, 9); err != nil {
		t.Fatalf("request after discarding a late reply: %v", err)
	}
}

// TestMuxTinyDeadlineThenNormalQuery is the acceptance pin: a
// tiny-deadline query (forced to hit its deadline by the hook) comes
// back as a typed per-item error, and a normal query follows on the
// same connection.
func TestMuxTinyDeadlineThenNormalQuery(t *testing.T) {
	cfg := Config{testHookQuery: func(ctx context.Context) {
		// Park deadline-carrying queries until their deadline fires;
		// wave everything else straight through.
		if _, ok := ctx.Deadline(); ok {
			<-ctx.Done()
		}
	}}
	srv, addr, s, u := startGridServer(t, cfg)
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := c.Query(ctx, qclient.QuerySpec{S: s, T: u})
	if err != nil {
		t.Fatalf("tiny-deadline query must degrade per-item, got call error %v", err)
	}
	if len(res.Items) != 1 || !errors.Is(res.Items[0].Err, core.ErrCanceled) {
		t.Fatalf("tiny-deadline item = %+v, want ErrCanceled", res.Items)
	}
	res, err = c.Query(context.Background(), qclient.QuerySpec{S: s, T: u})
	if err != nil || res.Items[0].Err != nil {
		t.Fatalf("normal query after tiny-deadline: res=%+v err=%v", res, err)
	}
	if got := srv.Metrics().TotalConns; got != 1 {
		t.Fatalf("TotalConns = %d, want 1 (deadline must not kill the connection)", got)
	}
}

// TestMuxMalformedPayloadFailsOnlyThatRequest drives the raw protocol:
// a well-framed request with a garbage payload gets an error under its
// id, and the session keeps serving.
func TestMuxMalformedPayloadFailsOnlyThatRequest(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if err := wire.WriteMessage(conn, &wire.Hello{Features: wire.FeatureMux}); err != nil {
		t.Fatal(err)
	}
	ack, err := wire.ReadMessage(br)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := ack.(*wire.HelloAck); !ok || a.Features&wire.FeatureMux == 0 {
		t.Fatalf("handshake reply %+v", ack)
	}
	// Frame 1: valid framing, bad payload version.
	bad := []byte{0, 0, 0, 10, 0, 0, 0, 0, 0, 0, 0, 7, 99, 1}
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	id, payload, _, err := wire.ReadMuxFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Fatalf("error reply under id %d, want 7", id)
	}
	msg, err := wire.Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(*wire.ErrorResponse); !ok || e.Code != wire.CodeBadRequest {
		t.Fatalf("reply = %+v, want bad-request error", msg)
	}
	// Frame 2: the session is still healthy.
	if _, err := conn.Write(wire.AppendMuxFrame(nil, 8, &wire.PingRequest{Token: 5})); err != nil {
		t.Fatal(err)
	}
	id, payload, _, err = wire.ReadMuxFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 {
		t.Fatalf("pong under id %d, want 8", id)
	}
	if pong, err := wire.Unmarshal(payload); err != nil {
		t.Fatal(err)
	} else if p, ok := pong.(*wire.PingResponse); !ok || p.Token != 5 {
		t.Fatalf("pong = %+v", pong)
	}
}

// TestMuxVsSerialBitIdentical compares every answer shape across the
// two transport modes on the same oracle: answers must be
// bit-identical — the mux changes scheduling, never results.
func TestMuxVsSerialBitIdentical(t *testing.T) {
	_, addr := startServer(t, Config{})
	serial, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	muxed, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer muxed.Close()
	if !muxed.Muxed() {
		t.Fatal("mux not negotiated")
	}
	for pair := 0; pair < 20; pair++ {
		s, u := uint32(pair*7%400), uint32((pair*31+5)%400)
		ds, ms, err := serial.Distance(s, u)
		if err != nil {
			t.Fatal(err)
		}
		dm, mm, err := muxed.Distance(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if ds != dm || ms != mm {
			t.Fatalf("pair (%d,%d): serial (%d,%d) != muxed (%d,%d)", s, u, ds, ms, dm, mm)
		}
		ps, _, err := serial.Path(s, u)
		if err != nil {
			t.Fatal(err)
		}
		pm, _, err := muxed.Path(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ps, pm) {
			t.Fatalf("pair (%d,%d): paths diverge: %v vs %v", s, u, ps, pm)
		}
	}
	ts := []uint32{1, 5, 9, 200, 399}
	bs, err := serial.Batch(2, ts)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := muxed.Batch(2, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bs, bm) {
		t.Fatalf("batch answers diverge: %+v vs %+v", bs, bm)
	}
}

// TestMuxSharedClientStressWithChurn is the -race stress from the
// issue: N goroutines share one muxed client while ApplyUpdates churns
// the snapshot underneath. Every request must come back either with a
// valid answer or a taxonomy error — never a transport failure.
func TestMuxSharedClientStressWithChurn(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Muxed() {
		t.Fatal("mux not negotiated")
	}
	stop := make(chan struct{})
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := core.Update{Edges: [][2]uint32{{uint32(i % 400), uint32((i*13 + 7) % 400)}}}
			if _, _, err := s.ApplyUpdates(u); err != nil {
				// Self-edges and duplicates are rejected; that churn
				// pattern is fine, keep going.
				continue
			}
		}
	}()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				sN, tN := uint32((w*41+i)%400), uint32((i*17+w)%400)
				switch i % 3 {
				case 0:
					if _, _, err := c.Distance(sN, tN); err != nil {
						errs <- fmt.Errorf("worker %d distance: %w", w, err)
						return
					}
				case 1:
					res, err := c.Query(context.Background(), qclient.QuerySpec{S: sN, T: tN, WantPath: true})
					if err != nil {
						errs <- fmt.Errorf("worker %d query: %w", w, err)
						return
					}
					if len(res.Items) != 1 {
						errs <- fmt.Errorf("worker %d query: %d items", w, len(res.Items))
						return
					}
				case 2:
					if _, err := c.Batch(sN, []uint32{tN, (tN + 1) % 400}); err != nil {
						errs <- fmt.Errorf("worker %d batch: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churnWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := s.Metrics().TotalConns; got != 1 {
		t.Fatalf("TotalConns = %d, want 1 (stress must share one connection)", got)
	}
}
