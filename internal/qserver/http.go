package qserver

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"vicinity/internal/core"
)

// Handler returns an http.Handler exposing the oracle as a JSON API:
//
//	GET /v1/distance?s=<id>&t=<id> → {"s":..,"t":..,"distance":..,"method":"..","reachable":bool}
//	GET /v1/path?s=<id>&t=<id>     → {"s":..,"t":..,"path":[..],"method":".."}
//	GET /v1/stats                  → oracle build statistics
//	GET /healthz                   → 200 "ok"
//
// The handler shares the oracle (and the query counter) with the TCP
// server when constructed from the same Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/distance", s.handleDistance)
	mux.HandleFunc("GET /v1/path", s.handlePath)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// parsePair extracts and validates the s and t query parameters.
func parsePair(r *http.Request) (s, t uint32, err error) {
	sv, err := strconv.ParseUint(r.URL.Query().Get("s"), 10, 32)
	if err != nil {
		return 0, 0, errors.New("parameter s must be a node id")
	}
	tv, err := strconv.ParseUint(r.URL.Query().Get("t"), 10, 32)
	if err != nil {
		return 0, 0, errors.New("parameter t must be a node id")
	}
	return uint32(sv), uint32(tv), nil
}

func queryStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrOutOfRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNotCovered):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	from, to, err := parsePair(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{err.Error()})
		return
	}
	s.queries.Add(1)
	d, method, err := s.oracle.Distance(from, to)
	if err != nil {
		writeJSON(w, queryStatus(err), httpError{err.Error()})
		return
	}
	type resp struct {
		S         uint32 `json:"s"`
		T         uint32 `json:"t"`
		Distance  uint32 `json:"distance"`
		Method    string `json:"method"`
		Reachable bool   `json:"reachable"`
	}
	out := resp{S: from, T: to, Method: method.String(), Reachable: d != core.NoDist}
	if out.Reachable {
		out.Distance = d
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	from, to, err := parsePair(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{err.Error()})
		return
	}
	s.queries.Add(1)
	p, method, err := s.oracle.Path(from, to)
	if err != nil {
		writeJSON(w, queryStatus(err), httpError{err.Error()})
		return
	}
	type resp struct {
		S      uint32   `json:"s"`
		T      uint32   `json:"t"`
		Path   []uint32 `json:"path"`
		Hops   int      `json:"hops"`
		Method string   `json:"method"`
	}
	out := resp{S: from, T: to, Path: p, Method: method.String()}
	if len(p) > 0 {
		out.Hops = len(p) - 1
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.oracle.Stats()
	ms := s.oracle.Memory()
	type resp struct {
		Nodes        int     `json:"nodes"`
		Edges        int     `json:"edges"`
		Alpha        float64 `json:"alpha"`
		Landmarks    int     `json:"landmarks"`
		AvgVicinity  float64 `json:"avg_vicinity"`
		MaxVicinity  int     `json:"max_vicinity"`
		AvgBoundary  float64 `json:"avg_boundary"`
		AvgRadius    float64 `json:"avg_radius"`
		TotalEntries int64   `json:"total_entries"`
		TotalBytes   int64   `json:"total_bytes"`
		Queries      int64   `json:"queries_served"`
	}
	writeJSON(w, http.StatusOK, resp{
		Nodes:        st.Nodes,
		Edges:        st.Edges,
		Alpha:        st.Alpha,
		Landmarks:    st.Landmarks,
		AvgVicinity:  st.AvgVicinity,
		MaxVicinity:  st.MaxVicinity,
		AvgBoundary:  st.AvgBoundary,
		AvgRadius:    st.AvgRadius,
		TotalEntries: ms.TotalEntries,
		TotalBytes:   ms.TotalBytes,
		Queries:      s.queries.Load(),
	})
}
