package qserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/store"
	"vicinity/internal/wire"
)

// Handler returns an http.Handler exposing the oracle as a JSON API:
//
//	GET  /v1/distance?s=<id>&t=<id> → {"s":..,"t":..,"distance":..,"method":"..","reachable":bool}
//	GET  /v1/path?s=<id>&t=<id>     → {"s":..,"t":..,"path":[..],"method":".."}
//	POST /v1/batch                  → one-to-many distances: {"s":..,"ts":[..]}
//	POST /v2/query                  → request-scoped query: deadline, budget, policy, typed error codes
//	POST /v2/kpaths                 → ranked loopless alternatives: {"s":..,"t":..,"k":4}
//	GET  /v1/stats                  → oracle build statistics and server counters
//	POST /v1/admin/update           → apply a graph mutation batch (requires Config.AllowUpdates)
//	POST /v1/admin/save             → serialize the current oracle to a server-side path (requires Config.AllowUpdates)
//	GET  /v1/repl/manifest          → replication manifest: role, epoch, retained delta window
//	GET  /v1/repl/fetch             → snapshot or delta artifact for replicas (see store.ReplHandler)
//	GET  /healthz                   → 200 "ok"
//
// The batch body names one source and many targets; the response
// carries one result per target in request order, with per-target
// errors inline ({"t":..,"error":".."}) so one bad id does not fail
// the ranking. The whole batch is answered from one oracle snapshot —
// an epoch swap mid-batch cannot mix answers from different oracles.
//
// The update body is {"add_nodes":N,"edges":[[u,v],...],
// "del_edges":[[u,v],...],"del_nodes":[u,...],
// "set_weights":[[u,v,w],...]}; the response reports the new epoch and
// graph size. Deleting or reweighting an absent edge is a 404 with the
// "edge_not_found" error code and applies nothing. Updates swap the
// oracle atomically, so queries keep flowing during a batch.
//
// The save body is {"path":"..."}: the handler writes the current
// snapshot as a v1 oracle file on the server's filesystem — the
// end-to-end hook that lets an operator (or CI) diff a churned oracle
// against a fresh build of the same graph.
//
// The handler shares the oracle (and the query/error counters) with
// the TCP server when constructed from the same Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/distance", s.handleDistance)
	mux.HandleFunc("GET /v1/path", s.handlePath)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v2/query", s.handleQueryV2)
	mux.HandleFunc("POST /v2/kpaths", s.handleKPathsV2)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/admin/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/admin/save", s.handleSave)
	mux.Handle("/v1/repl/", store.ReplHandler(s.cat))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

type httpError struct {
	Error string `json:"error"`
	Code  string `json:"error_code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError reports a typed oracle error: message plus the taxonomy's
// machine-readable snake_case code (core.ErrorCode — the one mapping
// the HTTP API and the CLI share).
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error(), Code: core.ErrorCode(err)})
}

// parsePair extracts and validates the s and t query parameters.
func parsePair(r *http.Request) (s, t uint32, err error) {
	sv, err := strconv.ParseUint(r.URL.Query().Get("s"), 10, 32)
	if err != nil {
		return 0, 0, errors.New("parameter s must be a node id")
	}
	tv, err := strconv.ParseUint(r.URL.Query().Get("t"), 10, 32)
	if err != nil {
		return 0, 0, errors.New("parameter t must be a node id")
	}
	return uint32(sv), uint32(tv), nil
}

func queryStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrNodeRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNotCovered):
		return http.StatusNotFound
	case errors.Is(err, core.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrStaleSnapshot):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// maxUpdateBody bounds the admin update request body (64 MiB is ~4M
// edges, far beyond a sane single batch).
const maxUpdateBody = 64 << 20

// maxUpdateNodes bounds add_nodes per batch: growth is per-node memory
// across a dozen arrays plus every landmark row, so an unbounded count
// in a tiny request body could otherwise OOM the server.
const maxUpdateNodes = 1 << 20

// handleUpdate applies a mutation batch posted as JSON. Replicas
// refuse: their state changes only by following the writer.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowUpdates {
		writeJSON(w, http.StatusForbidden, httpError{Error: "updates disabled: start the server with updates enabled"})
		return
	}
	if s.cat.Role() == store.RoleReplica {
		s.errCount.Add(1)
		writeJSON(w, http.StatusForbidden, httpError{Error: store.ErrReplicaReadOnly.Error(), Code: "replica_read_only"})
		return
	}
	var body struct {
		AddNodes   int         `json:"add_nodes"`
		Edges      [][]uint32  `json:"edges"`
		DelEdges   [][]uint32  `json:"del_edges"`
		DelNodes   []uint32    `json:"del_nodes"`
		SetWeights [][3]uint32 `json:"set_weights"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: "invalid update body: " + err.Error()})
		return
	}
	// Decode into variable-length pairs so malformed edges fail loudly
	// (a fixed [2]uint32 would silently zero-fill short arrays).
	pairs := func(field string, in [][]uint32) ([][2]uint32, bool) {
		out := make([][2]uint32, len(in))
		for i, e := range in {
			if len(e) != 2 {
				s.errCount.Add(1)
				writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("%s %d: want [u, v], got %d elements", field, i, len(e))})
				return nil, false
			}
			out[i] = [2]uint32{e[0], e[1]}
		}
		return out, true
	}
	edges, ok := pairs("edge", body.Edges)
	if !ok {
		return
	}
	delEdges, ok := pairs("del_edge", body.DelEdges)
	if !ok {
		return
	}
	changes := make([]core.WeightChange, len(body.SetWeights))
	for i, c := range body.SetWeights {
		changes[i] = core.WeightChange{U: c[0], V: c[1], W: c[2]}
	}
	if body.AddNodes < 0 || body.AddNodes > maxUpdateNodes {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("add_nodes must be in [0, %d]", maxUpdateNodes)})
		return
	}
	epoch, snap, err := s.ApplyUpdates(core.Update{
		AddNodes:   body.AddNodes,
		Edges:      edges,
		DelEdges:   delEdges,
		DelNodes:   body.DelNodes,
		SetWeights: changes,
	})
	if err != nil {
		s.errCount.Add(1)
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, core.ErrWeightedUpdate), errors.Is(err, core.ErrStaleSnapshot):
			status = http.StatusConflict
		case errors.Is(err, core.ErrEdgeNotFound):
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	g := snap.Graph()
	type resp struct {
		Epoch uint64 `json:"epoch"`
		Nodes int    `json:"nodes"`
		Edges int    `json:"edges"`
	}
	writeJSON(w, http.StatusOK, resp{Epoch: epoch, Nodes: g.NumNodes(), Edges: g.NumEdges()})
}

// handleSave serializes the current oracle snapshot to a path on the
// server's filesystem. Gated by AllowUpdates like handleUpdate — it is
// the other half of the churn workflow (mutate, then persist the
// repaired oracle for offline verification against a fresh build).
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.AllowUpdates {
		writeJSON(w, http.StatusForbidden, httpError{Error: "updates disabled: start the server with updates enabled"})
		return
	}
	var body struct {
		Path string `json:"path"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil || body.Path == "" {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: "invalid save body: want {\"path\":\"...\"}"})
		return
	}
	epoch, err := s.cat.SaveFile(body.Path)
	if err != nil {
		s.errCount.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	type resp struct {
		Path  string `json:"path"`
		Epoch uint64 `json:"epoch"`
	}
	writeJSON(w, http.StatusOK, resp{Path: body.Path, Epoch: epoch})
}

// handleBatch answers a one-to-many ranking batch posted as JSON.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		S  uint32   `json:"s"`
		Ts []uint32 `json:"ts"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: "invalid batch body: " + err.Error()})
		return
	}
	if len(body.Ts) > wire.MaxBatchTargets {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest,
			httpError{Error: fmt.Sprintf("batch of %d targets exceeds the %d cap", len(body.Ts), wire.MaxBatchTargets)})
		return
	}
	s.queries.Add(int64(len(body.Ts)))
	s.stall(r.Context())
	defer s.observe(EpBatch, time.Now())
	res, err := s.Oracle().DistanceMany(body.S, body.Ts)
	if err != nil {
		s.errCount.Add(1)
		writeError(w, queryStatus(err), err)
		return
	}
	type item struct {
		T         uint32 `json:"t"`
		Distance  uint32 `json:"distance"`
		Method    string `json:"method,omitempty"`
		Reachable bool   `json:"reachable"`
		Error     string `json:"error,omitempty"`
	}
	type resp struct {
		S       uint32 `json:"s"`
		Count   int    `json:"count"`
		Results []item `json:"results"`
	}
	out := resp{S: body.S, Count: len(res), Results: make([]item, len(res))}
	for i, br := range res {
		it := item{T: body.Ts[i]}
		if br.Err != nil {
			s.errCount.Add(1)
			it.Error = br.Err.Error()
		} else {
			it.Method = br.Method.String()
			it.Reachable = br.Dist != core.NoDist
			if it.Reachable {
				it.Distance = br.Dist
			}
		}
		out.Results[i] = it
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	from, to, err := parsePair(r)
	if err != nil {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	s.queries.Add(1)
	s.stall(r.Context())
	defer s.observe(EpDistance, time.Now())
	d, method, err := s.Oracle().Distance(from, to)
	if err != nil {
		s.errCount.Add(1)
		writeError(w, queryStatus(err), err)
		return
	}
	type resp struct {
		S         uint32 `json:"s"`
		T         uint32 `json:"t"`
		Distance  uint32 `json:"distance"`
		Method    string `json:"method"`
		Reachable bool   `json:"reachable"`
	}
	out := resp{S: from, T: to, Method: method.String(), Reachable: d != core.NoDist}
	if out.Reachable {
		out.Distance = d
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	from, to, err := parsePair(r)
	if err != nil {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	s.queries.Add(1)
	s.stall(r.Context())
	defer s.observe(EpPath, time.Now())
	p, method, err := s.Oracle().Path(from, to)
	if err != nil {
		s.errCount.Add(1)
		writeError(w, queryStatus(err), err)
		return
	}
	type resp struct {
		S      uint32   `json:"s"`
		T      uint32   `json:"t"`
		Path   []uint32 `json:"path"`
		Hops   int      `json:"hops"`
		Method string   `json:"method"`
	}
	out := resp{S: from, T: to, Path: p, Method: method.String()}
	if len(p) > 0 {
		out.Hops = len(p) - 1
	}
	writeJSON(w, http.StatusOK, out)
}

// LatencyStats is the JSON shape of one endpoint's latency summary in
// /v1/stats (microsecond quantiles from the log-linear histogram; each
// is a ≤6.25%-under estimate of the true quantile).
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// latencyStats summarizes the per-endpoint histograms; endpoints with
// no samples are omitted.
func (s *Server) latencyStats() map[string]LatencyStats {
	out := make(map[string]LatencyStats, numEndpoints)
	for ep := Endpoint(0); ep < numEndpoints; ep++ {
		snap := s.lat[ep].Snapshot()
		if snap.Count() == 0 {
			continue
		}
		const us = 1e3 // ns per µs
		out[ep.String()] = LatencyStats{
			Count:  snap.Count(),
			MeanUS: snap.Mean() / us,
			P50US:  float64(snap.Quantile(0.50)) / us,
			P95US:  float64(snap.Quantile(0.95)) / us,
			P99US:  float64(snap.Quantile(0.99)) / us,
			MaxUS:  float64(snap.Max()) / us,
		}
	}
	return out
}

// ReplicationStats is the JSON shape of the replication section in
// /v1/stats: the node's role and epoch, how far behind its upstream it
// is (replicas only), and the sync gauges its Replicator maintains.
type ReplicationStats struct {
	Role          string        `json:"role"`
	Epoch         uint64        `json:"epoch"`
	UpstreamEpoch uint64        `json:"upstream_epoch,omitempty"`
	Lag           uint64        `json:"lag"`
	FullSyncs     int64         `json:"full_syncs"`
	DeltaSyncs    int64         `json:"delta_syncs"`
	SyncErrors    int64         `json:"sync_errors"`
	LastSyncBytes int64         `json:"last_sync_bytes"`
	LastSyncMS    float64       `json:"last_sync_ms"`
	Fetch         *LatencyStats `json:"fetch,omitempty"`
}

// replicationStats summarizes the catalog's replication gauges.
func (s *Server) replicationStats() ReplicationStats {
	rs := s.cat.ReplStats()
	out := ReplicationStats{
		Role:          rs.Role.String(),
		Epoch:         rs.Epoch,
		UpstreamEpoch: rs.UpstreamEpoch,
		Lag:           rs.Lag,
		FullSyncs:     rs.FullSyncs,
		DeltaSyncs:    rs.DeltaSyncs,
		SyncErrors:    rs.SyncErrors,
		LastSyncBytes: rs.LastSyncBytes,
		LastSyncMS:    float64(rs.LastSyncNanos) / 1e6,
	}
	if rs.Fetch.Count() > 0 {
		const us = 1e3
		out.Fetch = &LatencyStats{
			Count:  rs.Fetch.Count(),
			MeanUS: rs.Fetch.Mean() / us,
			P50US:  float64(rs.Fetch.Quantile(0.50)) / us,
			P95US:  float64(rs.Fetch.Quantile(0.95)) / us,
			P99US:  float64(rs.Fetch.Quantile(0.99)) / us,
			MaxUS:  float64(rs.Fetch.Max()) / us,
		}
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cur := s.cat.State()
	st := cur.Oracle.Stats()
	ms := cur.Oracle.Memory()
	type resp struct {
		Nodes        int                     `json:"nodes"`
		Edges        int                     `json:"edges"`
		Alpha        float64                 `json:"alpha"`
		Landmarks    int                     `json:"landmarks"`
		AvgVicinity  float64                 `json:"avg_vicinity"`
		MaxVicinity  int                     `json:"max_vicinity"`
		AvgBoundary  float64                 `json:"avg_boundary"`
		AvgRadius    float64                 `json:"avg_radius"`
		TotalEntries int64                   `json:"total_entries"`
		TotalBytes   int64                   `json:"total_bytes"`
		Queries      int64                   `json:"queries_served"`
		Errors       int64                   `json:"errors"`
		Updates      int64                   `json:"updates_applied"`
		Epoch        uint64                  `json:"epoch"`
		InFlight     int64                   `json:"in_flight"`
		Shed         int64                   `json:"shed"`
		MuxConns     int64                   `json:"mux_conns"`
		Replication  ReplicationStats        `json:"replication"`
		Latency      map[string]LatencyStats `json:"latency,omitempty"`
	}
	writeJSON(w, http.StatusOK, resp{
		Nodes:        st.Nodes,
		Edges:        st.Edges,
		Alpha:        st.Alpha,
		Landmarks:    st.Landmarks,
		AvgVicinity:  st.AvgVicinity,
		MaxVicinity:  st.MaxVicinity,
		AvgBoundary:  st.AvgBoundary,
		AvgRadius:    st.AvgRadius,
		TotalEntries: ms.TotalEntries,
		TotalBytes:   ms.TotalBytes,
		Queries:      s.queries.Load(),
		Errors:       s.errCount.Load(),
		Updates:      s.cat.Updates(),
		Epoch:        cur.Epoch,
		InFlight:     s.inFlight.Load(),
		Shed:         s.shed.Load(),
		MuxConns:     s.muxConns.Load(),
		Replication:  s.replicationStats(),
		Latency:      s.latencyStats(),
	})
}

// maxQueryDeadlineMS is the v2 relative-deadline cap, shared with the
// TCP frame layer (and with clients, which clamp to it).
const maxQueryDeadlineMS = wire.MaxDeadlineMS

// handleQueryV2 answers a request-scoped query posted as JSON:
//
//	{"s":15, "t":4711}                                  single target
//	{"s":15, "ts":[42,99], "want_path":true}            one-to-many
//	{"s":15, "t":4711, "deadline_ms":5, "budget":20000, "policy":"full"}
//
// The deadline is relative, enforced inside the fallback search loop,
// and combined with the client disconnect signal (r.Context()) and the
// server's shutdown context. Budget and cancellation outcomes come
// back inline per result with a machine-readable "error_code"
// ("budget_exceeded", "canceled", ...) and HTTP 200 — mirroring
// /v1/batch, a partially-answered request is a success whose items
// explain themselves; only validation and source errors use HTTP error
// statuses.
func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	var body struct {
		S          uint32    `json:"s"`
		T          *uint32   `json:"t"`
		Ts         *[]uint32 `json:"ts"`
		DeadlineMS int64     `json:"deadline_ms"`
		Budget     int       `json:"budget"`
		Policy     string    `json:"policy"`
		WantPath   bool      `json:"want_path"`
		WantStats  bool      `json:"want_stats"`
		Parallel   int       `json:"parallel"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: "invalid query body: " + err.Error(), Code: "bad_request"})
		return
	}
	fail := func(msg string) {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: msg, Code: "bad_request"})
	}
	switch {
	case body.T == nil && body.Ts == nil:
		fail("one of t or ts is required")
		return
	case body.T != nil && body.Ts != nil:
		fail("t and ts are mutually exclusive")
		return
	case body.Ts != nil && len(*body.Ts) > wire.MaxBatchTargets:
		fail(fmt.Sprintf("query of %d targets exceeds the %d cap", len(*body.Ts), wire.MaxBatchTargets))
		return
	case body.Budget < 0:
		fail("budget must be >= 0")
		return
	case body.DeadlineMS < 0 || body.DeadlineMS > maxQueryDeadlineMS:
		fail(fmt.Sprintf("deadline_ms must be in [0, %d]", maxQueryDeadlineMS))
		return
	case body.Parallel < 0:
		fail("parallel must be >= 0")
		return
	}
	policy, err := core.ParsePolicy(body.Policy)
	if err != nil {
		fail(err.Error())
		return
	}
	defer s.observe(EpQuery, time.Now())
	if body.Ts != nil {
		defer s.observe(EpBatch, time.Now())
	} else if body.WantPath {
		defer s.observe(EpPath, time.Now())
	} else {
		defer s.observe(EpDistance, time.Now())
	}
	policy, leave := s.admit(policy)
	defer leave()

	// The request context: client disconnect (r.Context()) ∧ server
	// shutdown (s.baseCtx) ∧ the request's own deadline.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if body.DeadlineMS > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, time.Duration(body.DeadlineMS)*time.Millisecond)
		defer cancelT()
	}
	if s.cfg.testHookQuery != nil {
		s.cfg.testHookQuery(ctx)
	}

	req := core.Request{
		S:         body.S,
		Policy:    policy,
		Budget:    body.Budget,
		WantPath:  body.WantPath,
		WantStats: body.WantStats,
		Parallel:  min(body.Parallel, s.cfg.MaxBatchParallel),
	}
	targets := []uint32{}
	if body.Ts != nil {
		req.Ts = *body.Ts
		if req.Ts == nil {
			req.Ts = []uint32{}
		}
		targets = req.Ts
		s.queries.Add(int64(len(req.Ts)))
	} else {
		req.T = *body.T
		targets = append(targets, *body.T)
		s.queries.Add(1)
	}

	s.stall(ctx)
	pinned := s.cat.State()
	res, err := pinned.Oracle.Query(ctx, req)

	type v2Item struct {
		T         uint32   `json:"t"`
		Distance  uint32   `json:"distance"`
		Method    string   `json:"method"`
		Reachable bool     `json:"reachable"`
		Path      []uint32 `json:"path,omitempty"`
		Error     string   `json:"error,omitempty"`
		ErrorCode string   `json:"error_code,omitempty"`
	}
	type v2Cost struct {
		Lookups   int `json:"lookups"`
		Scanned   int `json:"scanned"`
		Expanded  int `json:"expanded"`
		Fallbacks int `json:"fallbacks"`
	}
	type v2Resp struct {
		S       uint32   `json:"s"`
		Epoch   uint64   `json:"epoch"`
		Results []v2Item `json:"results"`
		Cost    *v2Cost  `json:"cost,omitempty"`
	}

	fill := func(t uint32, dist uint32, method core.Method, path []uint32, ierr error) v2Item {
		it := v2Item{T: t, Method: method.String(), Path: path}
		if dist != core.NoDist {
			it.Distance = dist
			it.Reachable = true
		}
		if ierr != nil {
			s.errCount.Add(1)
			it.Error = ierr.Error()
			it.ErrorCode = core.ErrorCode(ierr)
		}
		return it
	}

	out := v2Resp{S: body.S, Epoch: pinned.Epoch, Results: []v2Item{}}
	if body.Ts != nil {
		if err != nil && res.Items == nil {
			s.errCount.Add(1)
			writeError(w, queryStatus(err), err)
			return
		}
		// A canceled batch still reports its per-item outcomes; the
		// top-level error is fully represented by the item codes.
		for i, it := range res.Items {
			out.Results = append(out.Results, fill(targets[i], it.Dist, it.Method, it.Path, it.Err))
		}
	} else {
		if err != nil && !errors.Is(err, core.ErrBudgetExceeded) && !errors.Is(err, core.ErrCanceled) {
			s.errCount.Add(1)
			writeError(w, queryStatus(err), err)
			return
		}
		out.Results = append(out.Results, fill(targets[0], res.Dist, res.Method, res.Path, err))
	}
	if body.WantStats {
		out.Cost = &v2Cost{
			Lookups:   res.Cost.Lookups,
			Scanned:   res.Cost.Scanned,
			Expanded:  res.Cost.Expanded,
			Fallbacks: res.Cost.Fallbacks,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleKPathsV2 answers a ranked-alternatives request posted as JSON:
//
//	{"s":15, "t":4711, "k":4}
//	{"s":15, "t":4711, "k":8, "budget":20000, "deadline_ms":5, "policy":"full"}
//
// The response lists up to k loopless s→t paths in canonical
// (distance, length, lexicographic) order. Budget and deadline
// exhaustion mid-enumeration is HTTP 200 with the paths found so far
// plus a top-level machine-readable error_code — mirroring the partial
// contract of /v2/query. The request runs against one pinned snapshot:
// epoch swaps mid-enumeration cannot mix graphs, and the reported
// epoch is the cluster epoch read-your-epoch routing needs.
func (s *Server) handleKPathsV2(w http.ResponseWriter, r *http.Request) {
	var body struct {
		S          uint32 `json:"s"`
		T          uint32 `json:"t"`
		K          int    `json:"k"`
		DeadlineMS int64  `json:"deadline_ms"`
		Budget     int    `json:"budget"`
		Policy     string `json:"policy"`
		WantStats  bool   `json:"want_stats"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: "invalid kpaths body: " + err.Error(), Code: "bad_request"})
		return
	}
	fail := func(msg string) {
		s.errCount.Add(1)
		writeJSON(w, http.StatusBadRequest, httpError{Error: msg, Code: "bad_request"})
	}
	switch {
	case body.K < 1 || body.K > core.MaxK:
		fail(fmt.Sprintf("k must be in [1, %d]", core.MaxK))
		return
	case body.Budget < 0:
		fail("budget must be >= 0")
		return
	case body.DeadlineMS < 0 || body.DeadlineMS > maxQueryDeadlineMS:
		fail(fmt.Sprintf("deadline_ms must be in [0, %d]", maxQueryDeadlineMS))
		return
	}
	policy, err := core.ParsePolicy(body.Policy)
	if err != nil {
		fail(err.Error())
		return
	}
	s.queries.Add(1)
	defer s.observe(EpKPaths, time.Now())
	policy, leave := s.admit(policy)
	defer leave()

	// The request context: client disconnect (r.Context()) ∧ server
	// shutdown (s.baseCtx) ∧ the request's own deadline.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if body.DeadlineMS > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, time.Duration(body.DeadlineMS)*time.Millisecond)
		defer cancelT()
	}
	if s.cfg.testHookQuery != nil {
		s.cfg.testHookQuery(ctx)
	}

	s.stall(ctx)
	pinned := s.cat.State()
	res, err := pinned.Oracle.Query(ctx, core.Request{
		S:         body.S,
		T:         body.T,
		K:         body.K,
		Policy:    policy,
		Budget:    body.Budget,
		WantPath:  true,
		WantStats: body.WantStats,
	})
	if err != nil && !errors.Is(err, core.ErrBudgetExceeded) && !errors.Is(err, core.ErrCanceled) {
		s.errCount.Add(1)
		writeError(w, queryStatus(err), err)
		return
	}

	type kAlt struct {
		Distance uint32   `json:"distance"`
		Hops     int      `json:"hops"`
		Path     []uint32 `json:"path"`
	}
	type v2Cost struct {
		Lookups   int `json:"lookups"`
		Scanned   int `json:"scanned"`
		Expanded  int `json:"expanded"`
		Fallbacks int `json:"fallbacks"`
	}
	type kResp struct {
		S         uint32  `json:"s"`
		T         uint32  `json:"t"`
		K         int     `json:"k"`
		Epoch     uint64  `json:"epoch"`
		Method    string  `json:"method"`
		Count     int     `json:"count"`
		Paths     []kAlt  `json:"paths"`
		Error     string  `json:"error,omitempty"`
		ErrorCode string  `json:"error_code,omitempty"`
		Cost      *v2Cost `json:"cost,omitempty"`
	}
	out := kResp{
		S: body.S, T: body.T, K: body.K,
		Epoch:  pinned.Epoch,
		Method: res.Method.String(),
		Count:  len(res.Paths),
		Paths:  make([]kAlt, len(res.Paths)),
	}
	for i, p := range res.Paths {
		out.Paths[i] = kAlt{Distance: p.Dist, Hops: len(p.Path) - 1, Path: p.Path}
	}
	if err != nil {
		s.errCount.Add(1)
		out.Error = err.Error()
		out.ErrorCode = core.ErrorCode(err)
	}
	if body.WantStats {
		out.Cost = &v2Cost{
			Lookups:   res.Cost.Lookups,
			Scanned:   res.Cost.Scanned,
			Expanded:  res.Cost.Expanded,
			Fallbacks: res.Cost.Fallbacks,
		}
	}
	writeJSON(w, http.StatusOK, out)
}
