package qserver

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/store"
	"vicinity/internal/wire"
	"vicinity/internal/xrand"
)

// startServerWith starts a TCP server for an existing Server value on a
// loopback port, mirroring startServer's lifecycle management.
func startServerWith(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

// wireRT writes one request frame and reads one response frame.
func wireRT(t *testing.T, conn net.Conn, req wire.Message) wire.Message {
	t.Helper()
	if err := wire.WriteMessage(conn, req); err != nil {
		t.Fatalf("write %v: %v", req.WireType(), err)
	}
	resp, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatalf("read response to %v: %v", req.WireType(), err)
	}
	return resp
}

// TestReplicatedServing drives the full writer → replica loop through
// the real HTTP replication endpoints and the real TCP query surface: a
// replica bootstrapped empty converges on the churned writer and
// answers every query identically, reporting the writer's cluster
// epoch (not its local generation counter).
func TestReplicatedServing(t *testing.T) {
	const n = 300
	g := gen.HolmeKim(xrand.New(7), n, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	writer := NewWithCatalog(store.NewCatalog(o, store.RoleWriter), Config{})
	writerAddr := startServerWith(t, writer)
	wh := httptest.NewServer(writer.Handler())
	defer wh.Close()

	repCat, err := store.Bootstrap(store.RoleReplica)
	if err != nil {
		t.Fatal(err)
	}
	replica := NewWithCatalog(repCat, Config{})
	replicaAddr := startServerWith(t, replica)

	repl := &store.Replicator{Catalog: repCat, Base: wh.URL}
	ctx := context.Background()
	// First sync: nothing retained covers epoch 0 → full snapshot.
	if err := repl.SyncOnce(ctx); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	if got := repCat.Epoch(); got != 0 {
		t.Fatalf("replica epoch after bootstrap sync = %d, want 0", got)
	}

	// Churn the writer: each batch attaches one new node.
	for i := uint32(0); i < 5; i++ {
		if _, _, err := writer.ApplyUpdates(core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{n + i, i * 31 % n}},
		}); err != nil {
			t.Fatalf("writer update %d: %v", i, err)
		}
	}
	if err := repl.SyncOnce(ctx); err != nil {
		t.Fatalf("catch-up sync: %v", err)
	}
	rs := repCat.ReplStats()
	if rs.Epoch != writer.Catalog().Epoch() || rs.Epoch != 5 {
		t.Fatalf("replica epoch = %d, writer epoch = %d, want 5", rs.Epoch, writer.Catalog().Epoch())
	}
	if rs.DeltaSyncs == 0 {
		t.Fatalf("catch-up did not use deltas: %+v", rs)
	}

	wc, err := net.Dial("tcp", writerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	rc, err := net.Dial("tcp", replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Same wire answers, and the replica reports the cluster epoch even
	// though its loaded snapshot's generation counter restarted at zero.
	r := xrand.New(99)
	for i := 0; i < 200; i++ {
		a, b := r.Uint32n(n+5), r.Uint32n(n+5)
		req := &wire.QueryRequest{S: a, T: b, Flags: wire.QueryWantPath}
		wresp := wireRT(t, wc, req)
		rresp := wireRT(t, rc, req)
		wq, ok1 := wresp.(*wire.QueryResponse)
		rq, ok2 := rresp.(*wire.QueryResponse)
		if !ok1 || !ok2 {
			t.Fatalf("query (%d,%d): writer %T, replica %T", a, b, wresp, rresp)
		}
		if wq.Epoch != 5 || rq.Epoch != 5 {
			t.Fatalf("query (%d,%d): epochs writer=%d replica=%d, want 5", a, b, wq.Epoch, rq.Epoch)
		}
		if !bytes.Equal(wire.Marshal(wq), wire.Marshal(rq)) {
			t.Fatalf("query (%d,%d): writer %+v, replica %+v", a, b, wq, rq)
		}
	}
}

// TestReplStatusFrame pins the wire-level replication status probe.
func TestReplStatusFrame(t *testing.T) {
	s, addr := startServer(t, Config{})
	if _, _, err := s.ApplyUpdates(core.Update{AddNodes: 1, Edges: [][2]uint32{{400, 3}}}); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp := wireRT(t, conn, &wire.ReplStatusRequest{})
	st, ok := resp.(*wire.ReplStatusResponse)
	if !ok {
		t.Fatalf("got %T: %+v", resp, resp)
	}
	want := wire.ReplStatusResponse{Role: wire.RoleStandalone, Epoch: 1, MinDelta: 1, MaxDelta: 1}
	if *st != want {
		t.Fatalf("repl status = %+v, want %+v", *st, want)
	}
}

// TestReplicaRefusesAdminUpdate: the HTTP mutation endpoint answers 403
// on a replica even when updates are otherwise enabled.
func TestReplicaRefusesAdminUpdate(t *testing.T) {
	cat, err := store.Bootstrap(store.RoleReplica)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithCatalog(cat, Config{AllowUpdates: true})
	h := httptest.NewServer(s.Handler())
	defer h.Close()
	resp, err := http.Post(h.URL+"/v1/admin/update", "application/json",
		bytes.NewReader([]byte(`{"add_nodes":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	// The programmatic path refuses too.
	if _, _, err := s.ApplyUpdates(core.Update{AddNodes: 1}); err != store.ErrReplicaReadOnly {
		t.Fatalf("ApplyUpdates on replica: %v, want ErrReplicaReadOnly", err)
	}
}

// TestStallQueries: the chaos knob delays queries but not pings.
func TestStallQueries(t *testing.T) {
	const stall = 30 * time.Millisecond
	_, addr := startServer(t, Config{StallQueries: stall})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if resp := wireRT(t, conn, &wire.DistanceRequest{S: 1, T: 2}); resp.WireType() != wire.TypeDistanceResp {
		t.Fatalf("got %v", resp.WireType())
	}
	if took := time.Since(start); took < stall {
		t.Fatalf("stalled distance answered in %v, want >= %v", took, stall)
	}
	if resp := wireRT(t, conn, &wire.PingRequest{Token: 9}); resp.WireType() != wire.TypePingResp {
		t.Fatalf("got %v", resp.WireType())
	}
}
