package qserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/qclient"
	"vicinity/internal/store"
	"vicinity/internal/wire"
	"vicinity/internal/xrand"
)

// TestKPathsWireCapMatchesCore pins the serving-layer assumption the
// wire codec documents: the protocol's K cap and the oracle's MaxK are
// the same constant, so a frame the codec accepts can never be refused
// by core validation (or vice versa).
func TestKPathsWireCapMatchesCore(t *testing.T) {
	if wire.MaxKPaths != core.MaxK {
		t.Fatalf("wire.MaxKPaths = %d, core.MaxK = %d: serving layer assumes they agree", wire.MaxKPaths, core.MaxK)
	}
}

// TestKPathsTCPRoundTrip drives ranked-alternatives requests over both
// transport modes and checks the wire answer against the in-process
// oracle: same paths, same order, same epoch — and K=1 must match the
// plain single-path query bit for bit.
func TestKPathsTCPRoundTrip(t *testing.T) {
	s, addr := startServer(t, Config{})
	for _, mode := range []struct {
		name string
		opts qclient.Options
	}{
		{"serial", qclient.Options{}},
		{"mux", qclient.Options{Mux: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c, err := qclient.Dial(addr, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			o := s.Oracle()
			r := xrand.New(5)
			for i := 0; i < 60; i++ {
				a, b := r.Uint32n(400), r.Uint32n(400)
				k := 1 + int(r.Uint32n(6))
				want, werr := o.Query(ctx, core.Request{S: a, T: b, K: k, WantPath: true, WantStats: true})
				if werr != nil {
					t.Fatalf("(%d,%d,k=%d): local query: %v", a, b, k, werr)
				}
				res, err := c.Query(ctx, qclient.QuerySpec{S: a, T: b, K: k, WantStats: true})
				if err != nil {
					t.Fatalf("(%d,%d,k=%d): %v", a, b, k, err)
				}
				if len(res.Paths) != len(want.Paths) {
					t.Fatalf("(%d,%d,k=%d): %d paths over the wire, %d locally", a, b, k, len(res.Paths), len(want.Paths))
				}
				for j := range want.Paths {
					if res.Paths[j].Dist != want.Paths[j].Dist || !reflect.DeepEqual(res.Paths[j].Path, want.Paths[j].Path) {
						t.Fatalf("(%d,%d,k=%d) path %d: wire %+v, local %+v", a, b, k, j, res.Paths[j], want.Paths[j])
					}
				}
				if res.Cost != want.Cost {
					t.Fatalf("(%d,%d,k=%d): wire cost %+v, local %+v", a, b, k, res.Cost, want.Cost)
				}
				if len(res.Items) != 1 {
					t.Fatalf("(%d,%d,k=%d): %d synthetic items", a, b, k, len(res.Items))
				}
				// The synthetic item mirrors the best path (or unreachable).
				if len(res.Paths) > 0 {
					if res.Items[0].Dist != res.Paths[0].Dist || !reflect.DeepEqual(res.Items[0].Path, res.Paths[0].Path) {
						t.Fatalf("(%d,%d,k=%d): item %+v does not mirror best path %+v", a, b, k, res.Items[0], res.Paths[0])
					}
				} else if res.Items[0].Dist != qclient.NoDist {
					t.Fatalf("(%d,%d,k=%d): empty enumeration with dist %d", a, b, k, res.Items[0].Dist)
				}
				// K=1 must agree with the plain query exactly.
				if k == 1 {
					plain, err := c.Query(ctx, qclient.QuerySpec{S: a, T: b, WantPath: true})
					if err != nil {
						t.Fatalf("(%d,%d): plain query: %v", a, b, err)
					}
					if plain.Items[0].Dist != res.Items[0].Dist || !reflect.DeepEqual(plain.Items[0].Path, res.Items[0].Path) {
						t.Fatalf("(%d,%d): k=1 item %+v, plain %+v", a, b, res.Items[0], plain.Items[0])
					}
				}
			}
		})
	}
}

// TestKPathsTCPValidation covers the server-side refusals that reach
// the wire as typed error frames: bad policy, oversized deadline, and a
// K the codec itself refuses to decode.
func TestKPathsTCPValidation(t *testing.T) {
	_, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, tc := range []struct {
		name string
		req  *wire.KPathsRequest
	}{
		{"bad-policy", &wire.KPathsRequest{S: 1, T: 2, K: 2, Policy: 9}},
		{"deadline-cap", &wire.KPathsRequest{S: 1, T: 2, K: 2, DeadlineMS: wire.MaxDeadlineMS + 1}},
	} {
		resp := wireRT(t, conn, tc.req)
		e, ok := resp.(*wire.ErrorResponse)
		if !ok || e.Code != wire.CodeBadRequest {
			t.Fatalf("%s: response %+v, want bad-request error", tc.name, resp)
		}
	}

	// K=0 never decodes: the codec refuses it, so the serial server
	// drops the connection rather than risk answering a frame it could
	// not parse.
	raw := wire.Marshal(&wire.KPathsRequest{S: 1, T: 2, K: 1})
	raw[len(raw)-4] = 0 // zero the K u16 (K=1 → K=0)
	raw[len(raw)-3] = 0
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.ReadMessage(conn); err == nil {
		t.Fatalf("K=0 frame answered with %+v, want connection close", resp)
	}
}

// TestKPathsBudgetPartialTCP checks the partial-result contract over
// the wire: a budget sized to complete the root search but not the
// enumeration comes back as the typed budget error on the synthetic
// item, with the paths found so far attached.
func TestKPathsBudgetPartialTCP(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	o := s.Oracle()

	// Find a far pair so the spur searches need real work.
	r := xrand.New(9)
	var a, b uint32
	for i := 0; ; i++ {
		a, b = r.Uint32n(400), r.Uint32n(400)
		d, _, err := o.Distance(a, b)
		if err == nil && d >= 4 && d != core.NoDist {
			break
		}
		if i > 10000 {
			t.Fatal("no far pair found")
		}
	}
	root, err := o.Query(ctx, core.Request{S: a, T: b, WantPath: true, WantStats: true, Policy: core.PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, qclient.QuerySpec{
		S: a, T: b, K: 8, Policy: core.PolicyFull, Budget: root.Cost.Expanded + 2, WantStats: true,
	})
	if err != nil {
		t.Fatalf("budgeted kpaths: %v", err)
	}
	if res.Items[0].Err == nil || !errors.Is(res.Items[0].Err, core.ErrBudgetExceeded) {
		t.Fatalf("item error = %v, want ErrBudgetExceeded", res.Items[0].Err)
	}
	if len(res.Paths) < 1 || len(res.Paths) >= 8 {
		t.Fatalf("budget partial returned %d paths, want [1, 8)", len(res.Paths))
	}
	if res.Paths[0].Dist != root.Dist {
		t.Fatalf("partial kept root dist %d, want %d", res.Paths[0].Dist, root.Dist)
	}
}

// TestKPathsHTTP drives POST /v2/kpaths: agreement with the in-process
// oracle, validation refusals, and the HTTP-200 budget partial with its
// machine-readable error code.
func TestKPathsHTTP(t *testing.T) {
	s, _ := startServer(t, Config{})
	h := httptest.NewServer(s.Handler())
	defer h.Close()
	ctx := context.Background()
	o := s.Oracle()

	type kAlt struct {
		Distance uint32   `json:"distance"`
		Hops     int      `json:"hops"`
		Path     []uint32 `json:"path"`
	}
	type kResp struct {
		S         uint32 `json:"s"`
		T         uint32 `json:"t"`
		K         int    `json:"k"`
		Epoch     uint64 `json:"epoch"`
		Method    string `json:"method"`
		Count     int    `json:"count"`
		Paths     []kAlt `json:"paths"`
		Error     string `json:"error"`
		ErrorCode string `json:"error_code"`
	}
	post := func(body string) (*http.Response, kResp) {
		t.Helper()
		resp, err := http.Post(h.URL+"/v2/kpaths", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out kResp
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode %q response: %v", body, err)
		}
		return resp, out
	}

	r := xrand.New(21)
	for i := 0; i < 25; i++ {
		a, b := r.Uint32n(400), r.Uint32n(400)
		k := 1 + int(r.Uint32n(5))
		resp, out := post(fmt.Sprintf(`{"s":%d,"t":%d,"k":%d}`, a, b, k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("(%d,%d,k=%d): HTTP %d", a, b, k, resp.StatusCode)
		}
		want, err := o.Query(ctx, core.Request{S: a, T: b, K: k, WantPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if out.Count != len(want.Paths) || len(out.Paths) != len(want.Paths) {
			t.Fatalf("(%d,%d,k=%d): count %d, want %d", a, b, k, out.Count, len(want.Paths))
		}
		for j, p := range want.Paths {
			if out.Paths[j].Distance != p.Dist || !reflect.DeepEqual(out.Paths[j].Path, p.Path) {
				t.Fatalf("(%d,%d,k=%d) path %d: http %+v, local %+v", a, b, k, j, out.Paths[j], p)
			}
			if out.Paths[j].Hops != len(p.Path)-1 {
				t.Fatalf("(%d,%d,k=%d) path %d: hops %d for %d nodes", a, b, k, j, out.Paths[j].Hops, len(p.Path))
			}
		}
		if out.Method != want.Method.String() {
			t.Fatalf("(%d,%d,k=%d): method %q, want %q", a, b, k, out.Method, want.Method)
		}
	}

	// Validation refusals.
	for _, body := range []string{
		`{"s":1,"t":2}`,             // k missing (0)
		`{"s":1,"t":2,"k":65}`,      // over the cap
		`{"s":1,"t":2,"k":-1}`,      // negative
		`{"s":1,"t":2,"k":2,"x":1}`, // unknown field
		`{"s":1,"t":2,"k":2,"budget":-1}`,
		`{"s":1,"t":2,"k":2,"policy":"warp"}`,
	} {
		resp, out := post(body)
		if resp.StatusCode != http.StatusBadRequest || out.ErrorCode != "bad_request" {
			t.Fatalf("body %s: HTTP %d code %q, want 400 bad_request", body, resp.StatusCode, out.ErrorCode)
		}
	}

	// Source out of range is a 400 with the taxonomy code.
	resp, out := post(`{"s":99999,"t":2,"k":2}`)
	if resp.StatusCode != http.StatusBadRequest || out.ErrorCode != "node_range" {
		t.Fatalf("out-of-range: HTTP %d code %q", resp.StatusCode, out.ErrorCode)
	}

	// Budget partial: HTTP 200 with the error inline.
	rr := xrand.New(33)
	var a, b uint32
	for {
		a, b = rr.Uint32n(400), rr.Uint32n(400)
		if d, _, err := o.Distance(a, b); err == nil && d >= 4 && d != core.NoDist {
			break
		}
	}
	root, err := o.Query(ctx, core.Request{S: a, T: b, WantPath: true, WantStats: true, Policy: core.PolicyFull})
	if err != nil {
		t.Fatal(err)
	}
	resp, out = post(fmt.Sprintf(`{"s":%d,"t":%d,"k":8,"policy":"full","budget":%d}`, a, b, root.Cost.Expanded+2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget partial: HTTP %d", resp.StatusCode)
	}
	if out.ErrorCode != "budget_exceeded" {
		t.Fatalf("budget partial: error_code %q, want budget_exceeded", out.ErrorCode)
	}
	if out.Count < 1 || out.Count >= 8 {
		t.Fatalf("budget partial: %d paths, want [1, 8)", out.Count)
	}
}

// TestKPathsReplicaByteIdentical syncs a replica off a churned writer
// and demands byte-identical k-paths frames from both nodes — the
// determinism the router's hedging and failover rely on.
func TestKPathsReplicaByteIdentical(t *testing.T) {
	const n = 300
	g := gen.HolmeKim(xrand.New(13), n, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	writer := NewWithCatalog(store.NewCatalog(o, store.RoleWriter), Config{})
	writerAddr := startServerWith(t, writer)
	wh := httptest.NewServer(writer.Handler())
	defer wh.Close()

	repCat, err := store.Bootstrap(store.RoleReplica)
	if err != nil {
		t.Fatal(err)
	}
	replica := NewWithCatalog(repCat, Config{})
	replicaAddr := startServerWith(t, replica)

	for i := uint32(0); i < 3; i++ {
		if _, _, err := writer.ApplyUpdates(core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{n + i, i * 17 % n}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	repl := &store.Replicator{Catalog: repCat, Base: wh.URL}
	if err := repl.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	wc, err := net.Dial("tcp", writerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	rc, err := net.Dial("tcp", replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	r := xrand.New(77)
	for i := 0; i < 80; i++ {
		a, b := r.Uint32n(n+3), r.Uint32n(n+3)
		req := &wire.KPathsRequest{S: a, T: b, K: uint16(1 + r.Uint32n(4)), Flags: wire.KPathsWantStats}
		wresp := wireRT(t, wc, req)
		rresp := wireRT(t, rc, req)
		wk, ok1 := wresp.(*wire.KPathsResponse)
		rk, ok2 := rresp.(*wire.KPathsResponse)
		if !ok1 || !ok2 {
			t.Fatalf("kpaths (%d,%d): writer %T, replica %T", a, b, wresp, rresp)
		}
		if wk.Epoch != 3 || rk.Epoch != 3 {
			t.Fatalf("kpaths (%d,%d): epochs writer=%d replica=%d, want 3", a, b, wk.Epoch, rk.Epoch)
		}
		if !bytes.Equal(wire.Marshal(wk), wire.Marshal(rk)) {
			t.Fatalf("kpaths (%d,%d): writer %+v, replica %+v", a, b, wk, rk)
		}
	}
}

// TestKPathsAdmissionControl pins that ranked requests ride the same
// admission valve as singles: over MaxInFlight, a default-policy
// request is degraded to the estimate policy (whose k-paths answer is
// the single witness path) and the shed counter moves.
func TestKPathsAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	s, addr := startServer(t, Config{
		MaxInFlight: 1,
		testHookQuery: func(ctx context.Context) {
			<-release
		},
	})
	c1, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]*qclient.QueryResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c1.Query(ctx, qclient.QuerySpec{S: 1, T: 200, K: 3})
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	// Let the requests pile up past MaxInFlight, then release them all.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if shed := s.Metrics().Shed; shed == 0 {
		t.Fatalf("no requests shed with MaxInFlight=1 and 4 concurrent k-paths queries")
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("query %d: no result", i)
		}
		if len(res.Paths) == 0 {
			t.Fatalf("query %d: no paths", i)
		}
	}
}
