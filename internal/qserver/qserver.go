// Package qserver serves vicinity-oracle queries over TCP (the wire
// protocol) and HTTP/JSON. It is the production-shaped entry point the
// paper's motivating applications (social-network path queries behind a
// user-facing service with tens-of-milliseconds budgets) would deploy.
//
// Design follows standard Go server practice: one goroutine per
// connection, per-request read/write deadlines, a connection cap
// enforced with a semaphore, graceful shutdown draining active
// connections, and atomic counters exported for scraping.
//
// The served oracle lives in a store.Catalog — the epoch-versioned
// snapshot state machine shared by every serving role. Dynamic updates
// (ApplyUpdates, or the /v1/admin/update endpoint when enabled) build a
// new snapshot copy-on-write and swap it in with zero query downtime —
// queries never take a lock and each one reads a consistent epoch. A
// server created with NewWithCatalog in store.RoleWriter publishes
// snapshots and delta artifacts under /v1/repl/ for read replicas to
// follow; one in store.RoleReplica serves queries from whatever state
// its Replicator installs and refuses mutation.
package qserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/lhist"
	"vicinity/internal/store"
	"vicinity/internal/wire"
)

// Config tunes the server. The zero value gets sensible defaults.
type Config struct {
	// MaxConns caps concurrent connections (0 = 1024).
	MaxConns int
	// ReadTimeout bounds the wait for the next request on an idle
	// connection (0 = 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write (0 = 10s).
	WriteTimeout time.Duration
	// Logger receives connection-level errors (nil = silent).
	Logger *log.Logger
	// AllowUpdates enables the HTTP admin mutation endpoint
	// (POST /v1/admin/update). The programmatic ApplyUpdates method is
	// always available; this gates only the network surface.
	AllowUpdates bool
	// MaxInFlight enables admission control (0 = off): when more than
	// this many queries are being answered at once, new queries whose
	// policy permits a fallback search are degraded to PolicyEstimate —
	// shed load gets a cheap landmark upper bound (marked by its method
	// and counted in Metrics.Shed) instead of queueing behind µs-to-ms
	// fallback searches. Table-resolved queries are unaffected: the
	// degradation only ever removes the expensive step, so the server
	// keeps its latency floor under overload rather than collapsing.
	MaxInFlight int
	// MaxBatchParallel caps the per-request batch worker fan-out a
	// client may ask for via the wire Parallel knob (0 = number of CPUs;
	// negative disables client-requested parallelism).
	MaxBatchParallel int
	// DisableMux refuses the multiplexed session mode: hello frames are
	// still acknowledged (the type is known) but the mux feature bit is
	// never granted, so every connection stays strictly
	// one-request-one-response. Interop tests use it to stand in for a
	// serial-only peer.
	DisableMux bool
	// MaxConnWorkers bounds concurrent request workers per multiplexed
	// connection (0 = 32). When all workers are busy the connection's
	// reader stops pulling frames, so backpressure reaches the client
	// through TCP instead of unbounded goroutine growth. Server-wide
	// admission control (MaxInFlight) still applies on top.
	MaxConnWorkers int
	// StallQueries artificially delays every query (distance, path,
	// batch, v2) by this duration before any oracle work — a chaos knob
	// for exercising client-side hedging against a slow replica. Pings,
	// stats and replication status frames are unaffected, so health
	// checks still see a live server. Never set in production.
	StallQueries time.Duration

	// testHookQuery, when non-nil, runs at the start of every v2 query
	// with the request context. Tests use it to hold a request in
	// flight and observe shutdown cancellation; never set in
	// production.
	testHookQuery func(context.Context)
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxBatchParallel == 0 {
		c.MaxBatchParallel = runtime.GOMAXPROCS(0)
	}
	if c.MaxConnWorkers <= 0 {
		c.MaxConnWorkers = 32
	}
	return c
}

// Metrics is a point-in-time snapshot of server counters.
type Metrics struct {
	ActiveConns  int64
	TotalConns   int64
	Queries      int64
	Errors       int64
	BytesRead    int64 // approximate: frame payloads only
	BytesWritten int64
	Updates      int64  // update batches applied
	Epoch        uint64 // current oracle epoch (0 = as built/loaded)
	InFlight     int64  // queries being answered right now
	Shed         int64  // queries degraded to PolicyEstimate by admission control
	MuxConns     int64  // connections currently in multiplexed session mode
}

// Endpoint indexes the per-endpoint latency histograms: the query
// shapes a server answers, shared between the TCP and HTTP surfaces.
type Endpoint int

// Latency endpoints.
const (
	EpDistance Endpoint = iota // single distance (v1 + v2 single-target)
	EpPath                     // single path
	EpBatch                    // one-to-many (v1 batch + v2 many-target)
	EpQuery                    // v2 query frames of any shape, end to end
	EpKPaths                   // ranked k-shortest-paths enumeration
	numEndpoints
)

// String returns the stats-reporting name of the endpoint.
func (e Endpoint) String() string {
	switch e {
	case EpDistance:
		return "distance"
	case EpPath:
		return "path"
	case EpBatch:
		return "batch"
	case EpQuery:
		return "query"
	case EpKPaths:
		return "kpaths"
	default:
		return fmt.Sprintf("Endpoint(%d)", int(e))
	}
}

// Server answers oracle queries. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cat *store.Catalog
	cfg Config

	// baseCtx parents every request context. Shutdown cancels it once
	// draining is over (or immediately on a forced shutdown), so
	// in-flight fallback searches — which poll the context inside the
	// search loop — stop burning CPU instead of running to completion
	// against closed connections.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	sem chan struct{}
	wg  sync.WaitGroup

	activeConns  atomic.Int64
	totalConns   atomic.Int64
	queries      atomic.Int64
	errCount     atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	inFlight     atomic.Int64
	shed         atomic.Int64
	muxConns     atomic.Int64

	lat [numEndpoints]lhist.Hist // per-endpoint service latency (ns)
}

// observe records one request's service latency (oracle work plus
// response assembly; socket writes excluded) against its endpoint.
func (s *Server) observe(ep Endpoint, start time.Time) {
	s.lat[ep].Observe(int64(time.Since(start)))
}

// Latency returns a snapshot of one endpoint's latency histogram.
func (s *Server) Latency(ep Endpoint) *lhist.Snapshot { return s.lat[ep].Snapshot() }

// admit applies admission control to one query: it enters the query
// into the in-flight gauge (the returned func leaves it; always call
// it) and, when the server is over MaxInFlight, degrades a
// fallback-permitting policy to PolicyEstimate so overload sheds to
// cheap landmark bounds instead of queueing. The returned policy is
// what the query must run with.
func (s *Server) admit(p core.Policy) (core.Policy, func()) {
	n := s.inFlight.Add(1)
	leave := func() { s.inFlight.Add(-1) }
	if s.cfg.MaxInFlight > 0 && n > int64(s.cfg.MaxInFlight) &&
		(p == core.PolicyDefault || p == core.PolicyFull) {
		s.shed.Add(1)
		return core.PolicyEstimate, leave
	}
	return p, leave
}

// New returns an unstarted standalone server for the oracle.
func New(oracle *core.Oracle, cfg Config) *Server {
	return NewWithCatalog(store.NewCatalog(oracle, store.RoleStandalone), cfg)
}

// NewWithCatalog returns an unstarted server serving the catalog's
// current state — the entry point for replicated roles: pass a
// store.RoleWriter catalog to publish snapshots and deltas, a
// store.RoleReplica one (driven by a store.Replicator) to serve
// read-only replicas.
func NewWithCatalog(cat *store.Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cat:   cat,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		sem:   make(chan struct{}, cfg.MaxConns),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Catalog returns the snapshot catalog the server serves from.
func (s *Server) Catalog() *store.Catalog { return s.cat }

// Oracle returns the currently served oracle snapshot.
func (s *Server) Oracle() *core.Oracle { return s.cat.State().Oracle }

// ApplyUpdates applies the batch to the served oracle copy-on-write and
// atomically swaps the new snapshot in; in-flight queries finish on the
// epoch they started with and later queries see the updated graph. It
// returns the new epoch number together with that epoch's snapshot
// (taken together under the catalog's mutation lock, so they are
// consistent with each other even when batches race). Batches are
// serialized; queries are never blocked. On a replica it refuses with
// store.ErrReplicaReadOnly — state arrives only via replication.
func (s *Server) ApplyUpdates(u core.Update) (uint64, *core.Oracle, error) {
	st, err := s.cat.Apply(u)
	return st.Epoch, st.Oracle, err
}

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		ActiveConns:  s.activeConns.Load(),
		TotalConns:   s.totalConns.Load(),
		Queries:      s.queries.Load(),
		Errors:       s.errCount.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		Updates:      s.cat.Updates(),
		Epoch:        s.cat.Epoch(),
		InFlight:     s.inFlight.Load(),
		Shed:         s.shed.Load(),
		MuxConns:     s.muxConns.Load(),
	}
}

// ListenAndServe listens on addr ("host:port") and serves until
// Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Shutdown closes it. It always
// returns a non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()

	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Transient errors (EMFILE etc.) get exponential backoff,
			// the pattern used by net/http.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		select {
		case s.sem <- struct{}{}:
		default:
			// Over the connection cap: refuse politely.
			s.errCount.Add(1)
			_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
			_ = wire.WriteMessage(conn, &wire.ErrorResponse{
				Code: wire.CodeUnavailable, Message: "connection limit reached",
			})
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			<-s.sem
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		s.totalConns.Add(1)
		s.activeConns.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the bound listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Shutdown stops accepting, closes the listener, and waits for active
// connections to drain. If ctx expires first the shutdown turns
// forced: the server cancels every in-flight request context (budgeted
// and fallback searches observe it inside their search loop and return
// promptly with ErrCanceled) and closes the connections.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// handleConn serves one connection. It starts in the v1 serial mode —
// a loop of read request → answer — and upgrades to the multiplexed
// session (serveMux) when the client's hello frame negotiates the mux
// feature. Frames are read into and written from per-connection
// reusable buffers, so the steady-state fixed-size request path stays
// allocation-free.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.activeConns.Add(-1)
		<-s.sem
		s.wg.Done()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // request/response protocol: latency over batching
	}
	br := bufio.NewReaderSize(conn, 4096)
	bw := bufio.NewWriterSize(conn, 4096)
	var rbuf, wbuf []byte
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		payload, nb, err := wire.ReadFrame(br, rbuf)
		rbuf = nb
		var req wire.Message
		if err == nil {
			req, err = wire.Unmarshal(payload)
		}
		if err != nil {
			// EOF and timeouts are normal connection ends; protocol
			// errors get a final error frame on a best-effort basis.
			if isProtocolError(err) {
				s.errCount.Add(1)
				_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				_ = wire.WriteMessage(conn, &wire.ErrorResponse{
					Code: wire.CodeBadRequest, Message: err.Error(),
				})
			}
			return
		}
		var resp wire.Message
		if h, ok := req.(*wire.Hello); ok {
			// Feature negotiation: grant the intersection of what the
			// client offers and what this server supports. A serial-only
			// configuration still acknowledges the hello — the type is
			// known — it just never grants the mux bit.
			feats := h.Features & wire.KnownFeatures
			if s.cfg.DisableMux {
				feats &^= wire.FeatureMux
			}
			resp = &wire.HelloAck{Features: feats}
			if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
				return
			}
			wbuf = wire.AppendFrame(wbuf[:0], resp)
			if _, err := bw.Write(wbuf); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			s.bytesWritten.Add(1)
			if feats&wire.FeatureMux != 0 {
				s.serveMux(conn, br, bw)
				return
			}
			continue
		}
		resp = s.dispatch(s.baseCtx, req)
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return
		}
		wbuf = wire.AppendFrame(wbuf[:0], resp)
		if _, err := bw.Write(wbuf); err != nil {
			s.logf("qserver: write to %v: %v", conn.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.bytesWritten.Add(1) // frame count proxy; exact sizes are wire detail
	}
}

// muxCompletion pairs a finished response with the request id it must
// echo on the wire.
type muxCompletion struct {
	id   uint64
	resp wire.Message
}

// serveMux runs one connection's multiplexed session: a reader loop
// (this goroutine) pulling id-carrying frames, a bounded pool of
// per-request workers, and a single writer goroutine draining a
// completion channel — so a slow batch or budgeted fallback no longer
// head-of-line-blocks the pings and singles sharing the connection.
//
// Ordering guarantee: responses are written in completion order, one
// whole frame at a time, by the single writer — frames never
// interleave, but ids may appear in any order relative to requests.
// The connection context descends from the server's base context and
// is canceled when the reader exits, so a client disconnect cancels
// every in-flight search on that connection.
func (s *Server) serveMux(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	s.muxConns.Add(1)
	defer s.muxConns.Add(-1)
	connCtx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	out := make(chan muxCompletion, s.cfg.MaxConnWorkers)
	writerDone := make(chan struct{})
	var writeFailed atomic.Bool
	go func() {
		defer close(writerDone)
		var buf []byte
		for c := range out {
			if writeFailed.Load() {
				continue // dead pipe: keep draining so workers never block
			}
			buf = wire.AppendMuxFrame(buf[:0], c.id, c.resp)
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if _, err := bw.Write(buf); err != nil {
				writeFailed.Store(true)
				cancel() // no one is listening: stop in-flight searches
				continue
			}
			// Flush only when nothing else is queued: completions that
			// pile up while the kernel buffer drains coalesce into one
			// syscall without adding latency to a lone response.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					writeFailed.Store(true)
					cancel()
					continue
				}
			}
			s.bytesWritten.Add(1)
		}
	}()

	var (
		wg       sync.WaitGroup
		inflight atomic.Int64
		workers  = make(chan struct{}, s.cfg.MaxConnWorkers)
		rbuf     []byte
	)
	for {
		// The idle timeout is enforced on a non-consuming Peek so a
		// deadline can never fire halfway through a frame and desync the
		// stream; a connection with work still in flight is not idle.
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			break
		}
		if _, err := br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && inflight.Load() > 0 {
				continue
			}
			break
		}
		id, payload, nb, err := wire.ReadMuxFrame(br, rbuf)
		rbuf = nb
		if err != nil {
			break // framing is unrecoverable: no id to answer under
		}
		req, err := wire.Unmarshal(payload)
		if err != nil {
			// A malformed payload inside a well-framed request fails only
			// that request: the id is known, so answer under it.
			s.errCount.Add(1)
			out <- muxCompletion{id, &wire.ErrorResponse{
				Code: wire.CodeBadRequest, Message: err.Error(),
			}}
			continue
		}
		workers <- struct{}{} // backpressure: stop reading at the cap
		wg.Add(1)
		inflight.Add(1)
		go func(id uint64, req wire.Message) {
			defer func() {
				inflight.Add(-1)
				<-workers
				wg.Done()
			}()
			out <- muxCompletion{id, s.dispatch(connCtx, req)}
		}(id, req)
	}
	cancel() // reader gone: cancel in-flight searches, then drain them
	wg.Wait()
	close(out)
	<-writerDone
}

func isProtocolError(err error) bool {
	return errors.Is(err, wire.ErrFrameTooLarge) ||
		errors.Is(err, wire.ErrBadVersion) ||
		errors.Is(err, wire.ErrTruncated)
}

// stall implements the Config.StallQueries chaos knob: it sleeps the
// configured delay (respecting cancellation) before a query runs.
func (s *Server) stall(ctx context.Context) {
	if s.cfg.StallQueries <= 0 {
		return
	}
	t := time.NewTimer(s.cfg.StallQueries)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// dispatch answers a single request message. The serving state — oracle
// snapshot plus cluster epoch — is pinned once per request, so a
// concurrent update swap or replica sync cannot split one query across
// epochs. ctx parents any search the request runs: the serial loop
// passes the server's base context, the multiplexed path a
// per-connection context canceled when the client goes away.
func (s *Server) dispatch(ctx context.Context, req wire.Message) wire.Message {
	s.bytesRead.Add(1)
	st := s.cat.State()
	oracle := st.Oracle
	switch m := req.(type) {
	case *wire.PingRequest:
		return &wire.PingResponse{Token: m.Token}

	case *wire.ReplStatusRequest:
		man := s.cat.Manifest()
		return &wire.ReplStatusResponse{
			Role:     uint8(s.cat.Role()),
			Epoch:    man.Epoch,
			MinDelta: man.MinDelta,
			MaxDelta: man.MaxDelta,
		}

	case *wire.DistanceRequest:
		s.queries.Add(1)
		s.stall(ctx)
		defer s.observe(EpDistance, time.Now())
		d, method, err := oracle.Distance(m.S, m.T)
		if err != nil {
			s.errCount.Add(1)
			return queryError(err)
		}
		return &wire.DistanceResponse{Dist: d, Method: uint8(method)}

	case *wire.PathRequest:
		s.queries.Add(1)
		s.stall(ctx)
		defer s.observe(EpPath, time.Now())
		p, method, err := oracle.Path(m.S, m.T)
		if err != nil {
			s.errCount.Add(1)
			return queryError(err)
		}
		return &wire.PathResponse{Method: uint8(method), Path: p}

	case *wire.BatchRequest:
		// One-to-many: the whole batch runs against the snapshot pinned
		// above, so an epoch swap mid-batch cannot mix oracles. Each
		// target counts as one query; per-target failures come back as
		// item codes without failing the batch.
		s.queries.Add(int64(len(m.Ts)))
		s.stall(ctx)
		defer s.observe(EpBatch, time.Now())
		res, err := oracle.DistanceMany(m.S, m.Ts)
		if err != nil {
			s.errCount.Add(1)
			return queryError(err)
		}
		items := make([]wire.BatchItem, len(res))
		for i, r := range res {
			items[i] = wire.BatchItem{Dist: r.Dist, Method: uint8(r.Method)}
			if r.Err != nil {
				s.errCount.Add(1)
				items[i].Code = queryCode(r.Err)
			}
		}
		return &wire.BatchResponse{Items: items}

	case *wire.QueryRequest:
		return s.dispatchQuery(ctx, st, m)

	case *wire.KPathsRequest:
		return s.dispatchKPaths(ctx, st, m)

	case *wire.StatsRequest:
		st := oracle.Stats()
		ms := oracle.Memory()
		return &wire.StatsResponse{
			Nodes:         uint64(st.Nodes),
			Edges:         uint64(st.Edges),
			Landmarks:     uint64(st.Landmarks),
			AvgVicinityE6: uint64(st.AvgVicinity * 1e6),
			TotalEntries:  uint64(ms.TotalEntries),
			QueriesServed: uint64(s.queries.Load()),
		}

	default:
		s.errCount.Add(1)
		return &wire.ErrorResponse{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("unexpected message type %v", req.WireType()),
		}
	}
}

// dispatchQuery answers a v2 request-scoped query frame. The request
// context descends from the caller's (which itself descends from the
// server's base context, so a forced shutdown cancels in-flight
// searches) with the frame's relative deadline applied on top; budget/cancel outcomes come back as
// per-item codes so the best-known bound survives the wire, while
// validation failures keep the v1 ErrorResponse shape.
func (s *Server) dispatchQuery(ctx context.Context, st *store.State, m *wire.QueryRequest) wire.Message {
	oracle := st.Oracle
	many := m.Flags&wire.QueryMany != 0
	// Validate before counting, so rejected frames do not inflate
	// queries_served; the HTTP layer enforces the same limits.
	if core.Policy(m.Policy) > core.PolicyTableOnly {
		s.errCount.Add(1)
		return &wire.ErrorResponse{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("unknown query policy %d", m.Policy),
		}
	}
	if m.DeadlineMS > maxQueryDeadlineMS {
		s.errCount.Add(1)
		return &wire.ErrorResponse{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("deadline-ms %d exceeds the %d cap", m.DeadlineMS, maxQueryDeadlineMS),
		}
	}
	if many {
		s.queries.Add(int64(len(m.Ts)))
	} else {
		s.queries.Add(1)
	}
	s.stall(ctx)
	defer s.observe(EpQuery, time.Now())
	if many {
		defer s.observe(EpBatch, time.Now())
	} else if m.Flags&wire.QueryWantPath != 0 {
		defer s.observe(EpPath, time.Now())
	} else {
		defer s.observe(EpDistance, time.Now())
	}
	policy, leave := s.admit(core.Policy(m.Policy))
	defer leave()
	if m.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(m.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	if s.cfg.testHookQuery != nil {
		s.cfg.testHookQuery(ctx)
	}
	req := core.Request{
		S:         m.S,
		T:         m.T,
		Policy:    policy,
		Budget:    int(m.Budget),
		WantPath:  m.Flags&wire.QueryWantPath != 0,
		WantStats: m.Flags&wire.QueryWantStats != 0,
		Parallel:  min(int(m.Parallel), s.cfg.MaxBatchParallel),
	}
	if many {
		req.Ts = m.Ts
		if req.Ts == nil {
			req.Ts = []uint32{}
		}
	}
	res, err := oracle.Query(ctx, req)

	// The response reports the cluster epoch pinned with the snapshot,
	// not the oracle's internal generation counter: a replica's loaded
	// snapshot restarts its generation at zero, but its cluster epoch
	// matches the writer's, which is what read-your-epoch routing needs.
	resp := &wire.QueryResponse{Epoch: st.Epoch}
	if req.WantStats {
		resp.Lookups = wire.ClampU32(res.Cost.Lookups)
		resp.Scanned = wire.ClampU32(res.Cost.Scanned)
		resp.Expanded = wire.ClampU32(res.Cost.Expanded)
		resp.Fallbacks = wire.ClampU32(res.Cost.Fallbacks)
	}
	if many {
		if err != nil && res.Items == nil {
			s.errCount.Add(1)
			return queryError(err)
		}
		resp.Items = make([]wire.QueryItem, len(res.Items))
		for i, it := range res.Items {
			resp.Items[i] = wire.QueryItem{Dist: it.Dist, Method: uint8(it.Method), Path: it.Path}
			if it.Err != nil {
				s.errCount.Add(1)
				resp.Items[i].Code = queryCode(it.Err)
			}
		}
		if oversized := queryRespOversized(resp); oversized != nil {
			s.errCount.Add(1)
			return oversized
		}
		return resp
	}
	item := wire.QueryItem{Dist: res.Dist, Method: uint8(res.Method), Path: res.Path}
	if err != nil {
		s.errCount.Add(1)
		if !errors.Is(err, core.ErrBudgetExceeded) && !errors.Is(err, core.ErrCanceled) {
			return queryError(err)
		}
		item.Code = queryCode(err)
	}
	resp.Items = []wire.QueryItem{item}
	if oversized := queryRespOversized(resp); oversized != nil {
		s.errCount.Add(1)
		return oversized
	}
	return resp
}

// dispatchKPaths answers a ranked-alternatives frame. It runs against
// the snapshot pinned by dispatch, so enumeration never straddles an
// epoch swap; admission control can degrade the root policy exactly as
// it does for single queries (the deviation searches then run against
// whatever root the degraded policy produced). Budget and deadline
// exhaustion mid-enumeration come back as a top-level response code
// with the paths found so far, matching the partial-result contract of
// core.Request.K; per-item codes are reserved for the scatter-gather
// layer, which stamps wire.CodeNotCovered on uncovered shards.
func (s *Server) dispatchKPaths(ctx context.Context, st *store.State, m *wire.KPathsRequest) wire.Message {
	oracle := st.Oracle
	// Validate before counting, mirroring dispatchQuery. The codec
	// already rejects K outside [1, MaxKPaths] on decode; the checks
	// here keep the server safe against alternative frontends.
	if core.Policy(m.Policy) > core.PolicyTableOnly {
		s.errCount.Add(1)
		return &wire.ErrorResponse{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("unknown query policy %d", m.Policy),
		}
	}
	if m.DeadlineMS > maxQueryDeadlineMS {
		s.errCount.Add(1)
		return &wire.ErrorResponse{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("deadline-ms %d exceeds the %d cap", m.DeadlineMS, maxQueryDeadlineMS),
		}
	}
	if m.K == 0 || int(m.K) > core.MaxK {
		s.errCount.Add(1)
		return &wire.ErrorResponse{
			Code:    wire.CodeBadRequest,
			Message: fmt.Sprintf("k %d outside [1, %d]", m.K, core.MaxK),
		}
	}
	s.queries.Add(1)
	s.stall(ctx)
	defer s.observe(EpKPaths, time.Now())
	policy, leave := s.admit(core.Policy(m.Policy))
	defer leave()
	if m.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(m.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	if s.cfg.testHookQuery != nil {
		s.cfg.testHookQuery(ctx)
	}
	req := core.Request{
		S:         m.S,
		T:         m.T,
		K:         int(m.K),
		Policy:    policy,
		Budget:    int(m.Budget),
		WantPath:  true,
		WantStats: m.Flags&wire.KPathsWantStats != 0,
	}
	res, err := oracle.Query(ctx, req)
	resp := &wire.KPathsResponse{Epoch: st.Epoch, Method: uint8(res.Method)}
	if req.WantStats {
		resp.Lookups = wire.ClampU32(res.Cost.Lookups)
		resp.Scanned = wire.ClampU32(res.Cost.Scanned)
		resp.Expanded = wire.ClampU32(res.Cost.Expanded)
		resp.Fallbacks = wire.ClampU32(res.Cost.Fallbacks)
	}
	if err != nil {
		s.errCount.Add(1)
		if !errors.Is(err, core.ErrBudgetExceeded) && !errors.Is(err, core.ErrCanceled) {
			return queryError(err)
		}
		resp.Code = queryCode(err)
	}
	resp.Items = make([]wire.KPathsItem, len(res.Paths))
	for i, p := range res.Paths {
		resp.Items[i] = wire.KPathsItem{Dist: p.Dist, Path: p.Path}
	}
	if oversized := kpathsRespOversized(resp); oversized != nil {
		s.errCount.Add(1)
		return oversized
	}
	return resp
}

// kpathsRespOversized is queryRespOversized for the k-paths frame: k is
// small but paths can be long, so k long paths can still breach the
// frame cap on a pathological graph.
func kpathsRespOversized(resp *wire.KPathsResponse) wire.Message {
	size := 2 + 31 // version/type prefix + fixed KPathsResponse header
	for _, it := range resp.Items {
		size += 10 + 4*len(it.Path)
	}
	if size <= wire.MaxFrame {
		return nil
	}
	return &wire.ErrorResponse{
		Code:    wire.CodeBadRequest,
		Message: fmt.Sprintf("response of %d bytes exceeds the %d frame cap; reduce k", size, wire.MaxFrame),
	}
}

// queryRespOversized reports (as a typed refusal) a v2 response whose
// frame would exceed wire.MaxFrame. A within-cap target count can
// still overflow once want-path multiplies each item by its hop count
// — and so can one very long single path — so answer with an error the
// client can use instead of writing a frame it must reject (which
// would tear the connection down with no usable error).
func queryRespOversized(resp *wire.QueryResponse) wire.Message {
	size := 2 + 28 // version/type prefix + fixed QueryResponse header
	for _, it := range resp.Items {
		size += 11 + 4*len(it.Path)
	}
	if size <= wire.MaxFrame {
		return nil
	}
	return &wire.ErrorResponse{
		Code:    wire.CodeBadRequest,
		Message: fmt.Sprintf("response of %d bytes exceeds the %d frame cap; reduce targets or drop want-path", size, wire.MaxFrame),
	}
}

// queryCode maps the oracle's error taxonomy to wire error codes.
func queryCode(err error) uint16 {
	switch {
	case errors.Is(err, core.ErrNotCovered):
		return wire.CodeNotCovered
	case errors.Is(err, core.ErrNodeRange):
		return wire.CodeOutOfRange
	case errors.Is(err, core.ErrBudgetExceeded):
		return wire.CodeBudget
	case errors.Is(err, core.ErrCanceled):
		return wire.CodeCanceled
	case errors.Is(err, core.ErrStaleSnapshot):
		return wire.CodeStale
	default:
		return wire.CodeInternal
	}
}

// queryError maps oracle errors to wire errors.
func queryError(err error) wire.Message {
	return &wire.ErrorResponse{Code: queryCode(err), Message: err.Error()}
}
