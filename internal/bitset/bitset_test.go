package bitset

import (
	"testing"
	"testing/quick"

	"vicinity/internal/xrand"
)

func TestSetBasics(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 5 {
		t.Fatalf("Clear(64) failed: count=%d", s.Count())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Reset left %d bits", s.Count())
	}
}

func TestSetForEachOrdered(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestSetUnionIntersect(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	u := New(100)
	u.Union(a)
	u.Union(b)
	if !u.Test(1) || !u.Test(50) || !u.Test(99) || u.Count() != 3 {
		t.Fatal("union incorrect")
	}
	a.Intersect(b)
	if !a.Test(50) || a.Count() != 1 {
		t.Fatal("intersect incorrect")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched sizes did not panic")
		}
	}()
	New(10).Union(New(11))
}

func TestQuickSetMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 512
		s := New(n)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			switch op % 3 {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Test(i) != ref[i] {
					return false
				}
			}
		}
		return s.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVisitedBasics(t *testing.T) {
	v := NewVisited(10)
	if v.Len() != 10 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Seen(3) {
		t.Fatal("fresh Visited reports seen")
	}
	v.Mark(3)
	if !v.Seen(3) || v.Seen(4) {
		t.Fatal("Mark/Seen incorrect")
	}
	v.Reset()
	if v.Seen(3) {
		t.Fatal("Reset did not clear")
	}
}

func TestVisitedMarkIfUnseen(t *testing.T) {
	v := NewVisited(5)
	if !v.MarkIfUnseen(2) {
		t.Fatal("first MarkIfUnseen returned false")
	}
	if v.MarkIfUnseen(2) {
		t.Fatal("second MarkIfUnseen returned true")
	}
}

func TestVisitedEpochWrap(t *testing.T) {
	v := NewVisited(4)
	v.Mark(0)
	// Force the epoch to the wrap point and step over it.
	v.epoch = ^uint32(0)
	v.Mark(1)
	if !v.Seen(1) {
		t.Fatal("mark at max epoch lost")
	}
	v.Reset() // wraps to epoch 1 with full clear
	for i := 0; i < 4; i++ {
		if v.Seen(i) {
			t.Fatalf("element %d seen after wrap reset", i)
		}
	}
	v.Mark(2)
	if !v.Seen(2) {
		t.Fatal("mark after wrap lost")
	}
}

func TestVisitedManyResetsStayCorrect(t *testing.T) {
	v := NewVisited(8)
	r := xrand.New(1)
	for round := 0; round < 1000; round++ {
		v.Reset()
		marked := map[int]bool{}
		for k := 0; k < 4; k++ {
			i := r.Intn(8)
			v.Mark(i)
			marked[i] = true
		}
		for i := 0; i < 8; i++ {
			if v.Seen(i) != marked[i] {
				t.Fatalf("round %d: element %d seen=%v want %v", round, i, v.Seen(i), marked[i])
			}
		}
	}
}

func TestNegativeSizePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Set":     func() { New(-1) },
		"Visited": func() { NewVisited(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with negative size did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkVisitedMark(b *testing.B) {
	v := NewVisited(1 << 20)
	for i := 0; i < b.N; i++ {
		v.Mark(i & (1<<20 - 1))
	}
}

func BenchmarkVisitedReset(b *testing.B) {
	v := NewVisited(1 << 20)
	for i := 0; i < b.N; i++ {
		v.Reset()
	}
}
