// Package bitset provides dense bit sets and epoch-stamped visited marks.
//
// Both types exist to make graph traversals allocation-free in the steady
// state: a query engine keeps one Visited per worker and calls Reset
// between queries in O(1) instead of clearing O(n) bytes.
package bitset

import "math/bits"

// Set is a fixed-capacity dense bit set over [0, Len).
type Set struct {
	words []uint64
	n     int
}

// New returns a Set with capacity for n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Union sets s = s ∪ o. Both sets must have the same capacity.
func (s *Set) Union(o *Set) {
	if s.n != o.n {
		panic("bitset: size mismatch")
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ o. Both sets must have the same capacity.
func (s *Set) Intersect(o *Set) {
	if s.n != o.n {
		panic("bitset: size mismatch")
	}
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Visited is an epoch-stamped mark array: Reset is O(1) and Mark/Seen are
// single array operations. It trades 4 bytes per element for constant-time
// reuse across queries.
type Visited struct {
	stamp []uint32
	epoch uint32
}

// NewVisited returns a Visited with capacity n, all unseen.
func NewVisited(n int) *Visited {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Visited{stamp: make([]uint32, n), epoch: 1}
}

// Len returns the capacity.
func (v *Visited) Len() int { return len(v.stamp) }

// Reset unmarks every element in O(1) (amortized; a full clear happens
// once every 2^32-1 resets when the epoch counter wraps).
func (v *Visited) Reset() {
	v.epoch++
	if v.epoch == 0 { // wrapped: clear stamps and restart
		for i := range v.stamp {
			v.stamp[i] = 0
		}
		v.epoch = 1
	}
}

// Mark marks element i as seen.
func (v *Visited) Mark(i int) { v.stamp[i] = v.epoch }

// Seen reports whether element i has been marked since the last Reset.
func (v *Visited) Seen(i int) bool { return v.stamp[i] == v.epoch }

// MarkIfUnseen marks i and reports true iff it was previously unseen.
func (v *Visited) MarkIfUnseen(i int) bool {
	if v.stamp[i] == v.epoch {
		return false
	}
	v.stamp[i] = v.epoch
	return true
}
