package qclient_test

// Router tests run against real qserver instances (no import cycle:
// qserver does not import qclient) so that hedging, epoch routing and
// scatter-gather are exercised over the production wire path.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/qclient"
	"vicinity/internal/qserver"
	"vicinity/internal/xrand"
)

const routerN = 300

func routerOracle(t *testing.T) *core.Oracle {
	t.Helper()
	g := gen.HolmeKim(xrand.New(11), routerN, 4, 0.5)
	o, err := core.Build(g, core.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// startOracleServer serves o over TCP and returns its address.
func startOracleServer(t *testing.T, o *core.Oracle, cfg qserver.Config) (*qserver.Server, string) {
	t.Helper()
	s := qserver.New(o, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(ln)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-done
	})
	return s, ln.Addr().String()
}

// TestRouterHedgesAroundStalledReplica: with one replica stalled far
// past the hedge delay, hedged queries answer at healthy-replica speed
// and the hedge counters move.
func TestRouterHedgesAroundStalledReplica(t *testing.T) {
	o := routerOracle(t)
	const stall = 400 * time.Millisecond
	_, slowAddr := startOracleServer(t, o, qserver.Config{StallQueries: stall})
	_, fastAddr := startOracleServer(t, o, qserver.Config{})
	r, err := qclient.NewRouter([]string{slowAddr, fastAddr}, qclient.RouterOptions{
		HedgeDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	rng := xrand.New(3)
	for i := 0; i < 8; i++ {
		start := time.Now()
		res, err := r.Query(ctx, qclient.QuerySpec{S: rng.Uint32n(routerN), T: rng.Uint32n(routerN)})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Items) != 1 {
			t.Fatalf("query %d: %d items", i, len(res.Items))
		}
		if took := time.Since(start); took >= stall {
			t.Fatalf("query %d took %v, stall is %v: hedge never fired", i, took, stall)
		}
	}
	m := r.Metrics()
	// Round-robin lands the stalled replica as primary about half the
	// time; each of those must have hedged to the fast one and won.
	if m.Hedges == 0 || m.HedgeWins == 0 {
		t.Fatalf("hedge counters flat after stalled-primary queries: %+v", m)
	}
}

// TestRouterFailsOverDeadBackend: a dead address in the rotation costs
// a failover, never an error.
func TestRouterFailsOverDeadBackend(t *testing.T) {
	o := routerOracle(t)
	_, liveAddr := startOracleServer(t, o, qserver.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	r, err := qclient.NewRouter([]string{deadAddr, liveAddr}, qclient.RouterOptions{
		Client: qclient.Options{DialTimeout: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := r.Query(ctx, qclient.QuerySpec{S: 1, T: 2}); err != nil {
			t.Fatalf("query %d with one dead backend: %v", i, err)
		}
	}
	if m := r.Metrics(); m.Failovers == 0 {
		t.Fatalf("no failovers recorded with a dead backend in rotation: %+v", m)
	}
}

// TestRouterMinEpochRouting: read-your-epoch placement steers around a
// stale replica, and an unreachable epoch surfaces ErrStaleRead after
// the bounded wait.
func TestRouterMinEpochRouting(t *testing.T) {
	o := routerOracle(t)
	fresh, freshAddr := startOracleServer(t, o, qserver.Config{})
	_, staleAddr := startOracleServer(t, o, qserver.Config{})
	var epoch uint64
	for i := uint32(0); i < 3; i++ {
		e, _, err := fresh.ApplyUpdates(core.Update{
			AddNodes: 1,
			Edges:    [][2]uint32{{routerN + i, i}},
		})
		if err != nil {
			t.Fatal(err)
		}
		epoch = e
	}
	r, err := qclient.NewRouter([]string{staleAddr, freshAddr}, qclient.RouterOptions{
		StaleWait:    time.Millisecond,
		StaleRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		res, err := r.Query(ctx, qclient.QuerySpec{S: 1, T: 2, MinEpoch: epoch})
		if err != nil {
			t.Fatalf("read-your-epoch query %d: %v", i, err)
		}
		if res.Epoch < epoch {
			t.Fatalf("query %d answered at epoch %d, demanded %d", i, res.Epoch, epoch)
		}
	}
	// Nobody serves epoch 99: the router waits its bounded retries out,
	// then hands back ErrStaleRead rather than a stale answer.
	if _, err := r.Query(ctx, qclient.QuerySpec{S: 1, T: 2, MinEpoch: 99}); !errors.Is(err, qclient.ErrStaleRead) {
		t.Fatalf("unreachable min-epoch: err = %v, want ErrStaleRead", err)
	}
}

// TestRouterRefreshEpochs: the probe learns backend epochs without any
// query traffic.
func TestRouterRefreshEpochs(t *testing.T) {
	o := routerOracle(t)
	s, addr := startOracleServer(t, o, qserver.Config{})
	if _, _, err := s.ApplyUpdates(core.Update{AddNodes: 1, Edges: [][2]uint32{{routerN, 0}}}); err != nil {
		t.Fatal(err)
	}
	r, err := qclient.NewRouter([]string{addr}, qclient.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.RefreshEpochs(context.Background()); got != 1 {
		t.Fatalf("RefreshEpochs = %d, want 1", got)
	}
}

// TestRouterScatterGather pins the shard merge semantics: a two-shard
// router answers a many-target query bit-identically to one unsharded
// oracle, in request order, and a target outside every shard fails as
// its own item while the call succeeds.
func TestRouterScatterGather(t *testing.T) {
	o := routerOracle(t)
	_, loAddr := startOracleServer(t, o, qserver.Config{})
	_, hiAddr := startOracleServer(t, o, qserver.Config{})
	_, wholeAddr := startOracleServer(t, o, qserver.Config{})

	const cut = routerN / 2
	r, err := qclient.NewRouter(nil, qclient.RouterOptions{
		Nodes: []qclient.Shard{
			{Lo: 0, Hi: cut, Addrs: []string{loAddr}},
			{Lo: cut, Hi: routerN, Addrs: []string{hiAddr}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	whole, err := qclient.NewPool(wholeAddr, 1, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()

	ctx := context.Background()
	rng := xrand.New(17)
	for round := 0; round < 20; round++ {
		s := rng.Uint32n(routerN)
		ts := make([]uint32, 16)
		for i := range ts {
			ts[i] = rng.Uint32n(routerN)
		}
		spec := qclient.QuerySpec{S: s, Ts: ts, WantPath: round%2 == 0}
		sharded, err := r.Query(ctx, spec)
		if err != nil {
			t.Fatalf("round %d: sharded query: %v", round, err)
		}
		plain, err := whole.Query(ctx, spec)
		if err != nil {
			t.Fatalf("round %d: unsharded query: %v", round, err)
		}
		if len(sharded.Items) != len(plain.Items) {
			t.Fatalf("round %d: %d items sharded, %d unsharded", round, len(sharded.Items), len(plain.Items))
		}
		for i := range plain.Items {
			sh, pl := sharded.Items[i], plain.Items[i]
			if sh.Dist != pl.Dist || sh.Method != pl.Method {
				t.Fatalf("round %d item %d (t=%d): sharded (%d, %d), unsharded (%d, %d)",
					round, i, ts[i], sh.Dist, sh.Method, pl.Dist, pl.Method)
			}
			if len(sh.Path) != len(pl.Path) {
				t.Fatalf("round %d item %d: path lengths %d vs %d", round, i, len(sh.Path), len(pl.Path))
			}
			for j := range pl.Path {
				if sh.Path[j] != pl.Path[j] {
					t.Fatalf("round %d item %d: paths diverge at hop %d", round, i, j)
				}
			}
		}
	}

	// One covered target, one beyond every shard: per-item failure only.
	res, err := r.Query(ctx, qclient.QuerySpec{S: 1, Ts: []uint32{2, routerN + 50}})
	if err != nil {
		t.Fatalf("partial-coverage query: %v", err)
	}
	if res.Items[0].Err != nil {
		t.Fatalf("covered item failed: %v", res.Items[0].Err)
	}
	if !errors.Is(res.Items[1].Err, core.ErrNotCovered) {
		t.Fatalf("uncovered item err = %v, want ErrNotCovered", res.Items[1].Err)
	}

	// Single-target routing picks the covering shard; a target outside
	// every shard fails the call with the coverage taxonomy.
	if _, err := r.Query(ctx, qclient.QuerySpec{S: 1, T: cut + 3}); err != nil {
		t.Fatalf("single-target sharded query: %v", err)
	}
	if _, err := r.Query(ctx, qclient.QuerySpec{S: 1, T: routerN + 50}); !errors.Is(err, core.ErrNotCovered) {
		t.Fatalf("uncovered single target: err = %v, want ErrNotCovered", err)
	}
}

// TestRouterKPaths: ranked-alternatives requests ride the router like
// any other single-target read — hedging around a stalled replica
// returns the identical ranking (determinism is what makes the hedge
// safe), sharded routers send K to the shard covering T, and K mixed
// with Ts is refused before any network traffic.
func TestRouterKPaths(t *testing.T) {
	o := routerOracle(t)
	const stall = 400 * time.Millisecond
	_, slowAddr := startOracleServer(t, o, qserver.Config{StallQueries: stall})
	_, fastAddr := startOracleServer(t, o, qserver.Config{})
	r, err := qclient.NewRouter([]string{slowAddr, fastAddr}, qclient.RouterOptions{
		HedgeDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	direct, err := qclient.NewPool(fastAddr, 1, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	ctx := context.Background()
	rng := xrand.New(29)
	for i := 0; i < 8; i++ {
		spec := qclient.QuerySpec{S: rng.Uint32n(routerN), T: rng.Uint32n(routerN), K: 4}
		routed, err := r.Query(ctx, spec)
		if err != nil {
			t.Fatalf("routed kpaths %d: %v", i, err)
		}
		want, err := direct.Query(ctx, spec)
		if err != nil {
			t.Fatalf("direct kpaths %d: %v", i, err)
		}
		if len(routed.Paths) != len(want.Paths) {
			t.Fatalf("kpaths %d: %d paths routed, %d direct", i, len(routed.Paths), len(want.Paths))
		}
		for j := range want.Paths {
			if routed.Paths[j].Dist != want.Paths[j].Dist {
				t.Fatalf("kpaths %d path %d: dist %d routed, %d direct", i, j, routed.Paths[j].Dist, want.Paths[j].Dist)
			}
			for x := range want.Paths[j].Path {
				if routed.Paths[j].Path[x] != want.Paths[j].Path[x] {
					t.Fatalf("kpaths %d path %d: hops diverge at %d", i, j, x)
				}
			}
		}
	}

	// K with Ts never leaves the client.
	if _, err := r.Query(ctx, qclient.QuerySpec{S: 1, Ts: []uint32{2, 3}, K: 2}); err == nil {
		t.Fatal("K with Ts accepted")
	}

	// Sharded: K routes to the covering shard; uncovered targets carry
	// the coverage taxonomy.
	const cut = routerN / 2
	sr, err := qclient.NewRouter(nil, qclient.RouterOptions{
		Nodes: []qclient.Shard{
			{Lo: 0, Hi: cut, Addrs: []string{fastAddr}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	res, err := sr.Query(ctx, qclient.QuerySpec{S: 1, T: cut - 1, K: 3})
	if err != nil {
		t.Fatalf("sharded kpaths: %v", err)
	}
	if len(res.Paths) == 0 {
		t.Fatal("sharded kpaths returned no paths")
	}
	if _, err := sr.Query(ctx, qclient.QuerySpec{S: 1, T: cut + 5, K: 3}); !errors.Is(err, core.ErrNotCovered) {
		t.Fatalf("uncovered kpaths target: err = %v, want ErrNotCovered", err)
	}
}
