package qclient_test

// Tests for the client-side transport fixes: Close and context
// cancellation interrupting in-flight I/O, and the hello-handshake
// fallback against peers that predate the frame.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/qclient"
	"vicinity/internal/wire"
)

// fakeServerAll accepts connections until the listener closes, passing
// each to handle on its own goroutine.
func fakeServerAll(t *testing.T, handle func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				handle(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

// blackhole swallows everything and never replies — the shape of a
// stalled server.
func blackhole(conn net.Conn) { _, _ = io.Copy(io.Discard, conn) }

// TestCloseInterruptsInFlightRequest pins the lock-split fix: Close
// must interrupt a request blocked on a stalled server immediately —
// not queue behind it for the full request timeout.
func TestCloseInterruptsInFlightRequest(t *testing.T) {
	addr := fakeServerAll(t, blackhole)
	c, err := qclient.Dial(addr, qclient.Options{RequestTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := c.Distance(1, 2)
		errCh <- err
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the request block on the read
	closeDone := make(chan struct{})
	go func() {
		_ = c.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind an in-flight request")
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("request against a blackhole succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request not interrupted by Close")
	}
}

// TestCancelWithoutDeadlineMidFlight pins the second bugfix: a context
// canceled after the request is written — carrying no deadline at all —
// must surface core.ErrCanceled promptly, not wait out RequestTimeout.
func TestCancelWithoutDeadlineMidFlight(t *testing.T) {
	addr := fakeServerAll(t, blackhole)
	c, err := qclient.Dial(addr, qclient.Options{RequestTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, qclient.QuerySpec{S: 1, T: 2})
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the request go out and block
	start := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("err = %v, want core.ErrCanceled", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancellation took %v to propagate", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mid-flight cancellation ignored")
	}
}

// TestMuxFallbackToV1Peer emulates a v1 server — it closes the
// connection on the unknown hello type, exactly what the old
// read-dispatch loop does — and checks the client redials and serves
// serially, transparently.
func TestMuxFallbackToV1Peer(t *testing.T) {
	addr := fakeServerAll(t, func(conn net.Conn) {
		br := bufio.NewReader(conn)
		for {
			req, err := wire.ReadMessage(br)
			if err != nil {
				return
			}
			if _, ok := req.(*wire.Hello); ok {
				return // v1 peer: unknown type, close without a frame
			}
			if d, ok := req.(*wire.DistanceRequest); ok {
				_ = wire.WriteMessage(conn, &wire.DistanceResponse{Dist: d.S + d.T, Method: 1})
				continue
			}
			return
		}
	})
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatalf("mux dial against a v1 peer must fall back, got %v", err)
	}
	defer c.Close()
	if c.Muxed() {
		t.Fatal("negotiated mux against a peer that closed on hello")
	}
	d, _, err := c.Distance(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Fatalf("distance = %d, want 7", d)
	}
}

// TestMuxHandshakeRefusedStaysSerial checks the negotiated-down path
// against a peer that acknowledges the hello but grants nothing: same
// connection, serial mode.
func TestMuxHandshakeRefusedStaysSerial(t *testing.T) {
	conns := make(chan struct{}, 8)
	addr := fakeServerAll(t, func(conn net.Conn) {
		conns <- struct{}{}
		br := bufio.NewReader(conn)
		for {
			req, err := wire.ReadMessage(br)
			if err != nil {
				return
			}
			switch m := req.(type) {
			case *wire.Hello:
				_ = wire.WriteMessage(conn, &wire.HelloAck{Features: 0})
			case *wire.PingRequest:
				_ = wire.WriteMessage(conn, &wire.PingResponse{Token: m.Token})
			default:
				return
			}
		}
	})
	c, err := qclient.Dial(addr, qclient.Options{Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Muxed() {
		t.Fatal("mux negotiated despite an empty feature grant")
	}
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if len(conns) != 1 {
		t.Fatalf("client used %d connections, want 1 (no redial on a refused grant)", len(conns))
	}
}
