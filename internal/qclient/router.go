package qclient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/wire"
)

// Shard is one scope-partitioned serving group: the node-id range
// [Lo, Hi) its backends' oracles were built to cover, and the
// addresses (writer and/or replicas) serving that scope.
//
// Co-residency rule: a shard can only answer queries whose source is
// inside its build scope too, so shard scopes must replicate the
// query-source population (every shard's oracle covers all sources,
// partitioning only the target space). The Router enforces nothing it
// cannot see — it routes each target to the shard covering it and
// trusts the deployment to have built shards accordingly; a violation
// surfaces as the oracle's own not-covered error.
type Shard struct {
	Lo, Hi uint32
	Addrs  []string
}

// RouterOptions tunes a Router. The zero value gets sensible defaults.
type RouterOptions struct {
	// PoolSize is the connection-pool size per backend (0 = 2).
	PoolSize int
	// Client tunes the per-backend clients (dial/request timeouts, mux).
	Client Options
	// HedgeDelay enables hedged reads: when the first replica has not
	// answered within this delay, the same query is launched on a second
	// replica and the first response wins (the loser is canceled). 0
	// disables hedging. Pick it near the backend's p95+ latency so
	// hedges fire only on outliers; the wasted-work ceiling is one
	// duplicate per slow request.
	HedgeDelay time.Duration
	// DownCooldown is how long a backend that failed a request is
	// skipped in rotation before being retried (0 = 1s).
	DownCooldown time.Duration
	// StaleWait is the pause between read-your-epoch retries while
	// every backend is still behind QuerySpec.MinEpoch (0 = 5ms);
	// StaleRetries caps them (0 = 40). Replication lag is poll-interval
	// shaped, so a short patient loop beats failing fast.
	StaleWait    time.Duration
	StaleRetries int
	// Nodes is the scope-partitioned shard map for scatter-gather:
	// many-target queries are split by which shard covers each target,
	// fanned out, and merged back in request order. Empty = unsharded.
	Nodes []Shard
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.PoolSize < 1 {
		o.PoolSize = 2
	}
	if o.DownCooldown <= 0 {
		o.DownCooldown = time.Second
	}
	if o.StaleWait <= 0 {
		o.StaleWait = 5 * time.Millisecond
	}
	if o.StaleRetries <= 0 {
		o.StaleRetries = 40
	}
	return o
}

// RouterMetrics is a point-in-time snapshot of routing counters.
type RouterMetrics struct {
	Hedges       int64 // hedge requests launched after HedgeDelay
	HedgeWins    int64 // queries whose hedge answered first
	Failovers    int64 // retries on another backend after a failure
	StaleRetries int64 // read-your-epoch waits for replication to catch up
}

// ErrNoBackends is returned when routing finds no backend to try.
var ErrNoBackends = errors.New("qclient: no backend available")

// backend is one addressed server with its routing state: a lazy
// connection pool, the highest epoch observed from it, and a cooldown
// stamp set when it fails.
type backend struct {
	addr      string
	pool      *Pool
	epoch     atomic.Uint64
	downUntil atomic.Int64 // unix nanos; skipped in rotation until then
}

// noteEpoch ratchets the backend's observed epoch (epochs only grow;
// a stale probe racing a fresh response must not move it backwards).
func (b *backend) noteEpoch(e uint64) {
	for {
		cur := b.epoch.Load()
		if e <= cur || b.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// shardGroup is a Shard resolved to live backends.
type shardGroup struct {
	lo, hi   uint32
	backends []*backend
}

// Router routes queries over a cluster of replicas: round-robin with
// per-backend health and epoch tracking, transparent failover, hedged
// reads (RouterOptions.HedgeDelay), read-your-epoch placement
// (QuerySpec.MinEpoch — stale answers are retried on other replicas,
// then waited out while replication catches up), and scatter-gather
// over scope-partitioned shards (RouterOptions.Nodes). Methods are
// safe for concurrent use. All backends serve the same deterministic
// oracle state, so routing never changes an answer — only who computes
// it and when it is considered fresh enough.
type Router struct {
	opts     RouterOptions
	backends []*backend // unsharded (full-coverage) group
	shards   []shardGroup
	rr       atomic.Uint64

	hedges       atomic.Int64
	hedgeWins    atomic.Int64
	failovers    atomic.Int64
	staleRetries atomic.Int64
}

// NewRouter creates a router over the full-coverage backends in addrs
// plus any shard groups in opts.Nodes. Construction never dials: dead
// backends cost requests, not startup (see NewPool).
func NewRouter(addrs []string, opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	r := &Router{opts: opts}
	mk := func(addr string) *backend {
		p, _ := NewPool(addr, opts.PoolSize, opts.Client) // lazy: error is always nil
		return &backend{addr: addr, pool: p}
	}
	for _, a := range addrs {
		r.backends = append(r.backends, mk(a))
	}
	for _, sh := range opts.Nodes {
		if sh.Hi <= sh.Lo {
			return nil, fmt.Errorf("qclient: shard scope [%d, %d) is empty", sh.Lo, sh.Hi)
		}
		if len(sh.Addrs) == 0 {
			return nil, fmt.Errorf("qclient: shard [%d, %d) has no backends", sh.Lo, sh.Hi)
		}
		g := shardGroup{lo: sh.Lo, hi: sh.Hi}
		for _, a := range sh.Addrs {
			g.backends = append(g.backends, mk(a))
		}
		r.shards = append(r.shards, g)
	}
	if len(r.backends) == 0 && len(r.shards) == 0 {
		return nil, errors.New("qclient: router needs at least one backend address or shard")
	}
	return r, nil
}

// Metrics returns a snapshot of the routing counters.
func (r *Router) Metrics() RouterMetrics {
	return RouterMetrics{
		Hedges:       r.hedges.Load(),
		HedgeWins:    r.hedgeWins.Load(),
		Failovers:    r.failovers.Load(),
		StaleRetries: r.staleRetries.Load(),
	}
}

// Close closes every backend pool.
func (r *Router) Close() {
	for _, b := range r.backends {
		b.pool.Close()
	}
	for _, g := range r.shards {
		for _, b := range g.backends {
			b.pool.Close()
		}
	}
}

// RefreshEpochs probes every backend's replication status and updates
// its tracked epoch, returning the highest epoch seen. Callers that
// just wrote through the writer can instead pass the write's epoch as
// QuerySpec.MinEpoch directly; the probe is for routers that only read.
func (r *Router) RefreshEpochs(ctx context.Context) uint64 {
	var max atomic.Uint64
	var wg sync.WaitGroup
	probe := func(b *backend) {
		defer wg.Done()
		st, err := b.pool.ReplStatus(ctx)
		if err != nil {
			return
		}
		b.noteEpoch(st.Epoch)
		for {
			cur := max.Load()
			if st.Epoch <= cur || max.CompareAndSwap(cur, st.Epoch) {
				return
			}
		}
	}
	for _, b := range r.backends {
		wg.Add(1)
		go probe(b)
	}
	for _, g := range r.shards {
		for _, b := range g.backends {
			wg.Add(1)
			go probe(b)
		}
	}
	wg.Wait()
	return max.Load()
}

// isTransport reports whether an error indicts the backend (dead
// connection, timeout) rather than the request. Typed server replies
// mean the backend is healthy; so do stale reads and the caller's own
// cancellation.
func isTransport(err error) bool {
	var e *wire.ErrorResponse
	if errors.As(err, &e) {
		return false
	}
	return !errors.Is(err, ErrStaleRead) && !errors.Is(err, core.ErrCanceled)
}

// markDown puts a backend in cooldown after a transport failure.
func (r *Router) markDown(b *backend) {
	b.downUntil.Store(time.Now().Add(r.opts.DownCooldown).UnixNano())
}

// queryOn runs one query on one backend, updating its routing state.
func (r *Router) queryOn(ctx context.Context, b *backend, spec QuerySpec) (*QueryResult, error) {
	res, err := b.pool.Query(ctx, spec)
	if err != nil {
		if isTransport(err) {
			r.markDown(b)
		}
		return nil, err
	}
	b.downUntil.Store(0)
	b.noteEpoch(res.Epoch)
	return res, nil
}

// pickFrom chooses the next backend from group, round-robin, skipping
// already-tried ones. Preference order: up and at minEpoch, then up,
// then anything — a cluster that looks entirely down still gets one
// attempt rather than a guaranteed failure.
func (r *Router) pickFrom(group []*backend, minEpoch uint64, tried map[*backend]bool) *backend {
	start := int(r.rr.Add(1))
	now := time.Now().UnixNano()
	var anyUp, any *backend
	for i := 0; i < len(group); i++ {
		b := group[(start+i)%len(group)]
		if tried[b] {
			continue
		}
		if up := b.downUntil.Load() <= now; up {
			if minEpoch == 0 || b.epoch.Load() >= minEpoch {
				return b
			}
			if anyUp == nil {
				anyUp = b
			}
		}
		if any == nil {
			any = b
		}
	}
	if anyUp != nil {
		return anyUp
	}
	return any
}

// runGroup answers one query from a backend group: primary pick, a
// hedge launched after HedgeDelay if the primary is still silent, and
// failover to untried backends on retryable errors. First success
// wins; the cancelation of the loser rides the shared context.
func (r *Router) runGroup(ctx context.Context, group []*backend, spec QuerySpec) (*QueryResult, error) {
	tried := make(map[*backend]bool, 2)
	primary := r.pickFrom(group, spec.MinEpoch, tried)
	if primary == nil {
		return nil, ErrNoBackends
	}
	tried[primary] = true
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		out *QueryResult
		err error
		b   *backend
	}
	ch := make(chan result, len(group))
	run := func(b *backend) {
		go func() {
			out, err := r.queryOn(hctx, b, spec)
			ch <- result{out, err, b}
		}()
	}
	run(primary)
	outstanding := 1
	var hedgeB *backend
	var timerC <-chan time.Time
	if r.opts.HedgeDelay > 0 && len(group) > 1 {
		t := time.NewTimer(r.opts.HedgeDelay)
		defer t.Stop()
		timerC = t.C
	}
	var firstErr error
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if res.b == hedgeB {
					r.hedgeWins.Add(1)
				}
				return res.out, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			// Retryable failures move on to an untried backend; typed
			// query errors are deterministic (every backend would answer
			// identically), so they fail fast.
			retryable := errors.Is(res.err, ErrStaleRead) || isTransport(res.err)
			if retryable && ctx.Err() == nil {
				if nb := r.pickFrom(group, spec.MinEpoch, tried); nb != nil {
					tried[nb] = true
					r.failovers.Add(1)
					outstanding++
					run(nb)
					continue
				}
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timerC:
			timerC = nil
			if nb := r.pickFrom(group, spec.MinEpoch, tried); nb != nil {
				tried[nb] = true
				hedgeB = nb
				r.hedges.Add(1)
				outstanding++
				run(nb)
			}
		}
	}
}

// groupQuery wraps runGroup with the read-your-epoch wait: when every
// backend in the group is still behind MinEpoch, it sleeps StaleWait
// and retries (up to StaleRetries times) — replication lag is
// poll-shaped, so patience beats failure.
func (r *Router) groupQuery(ctx context.Context, group []*backend, spec QuerySpec) (*QueryResult, error) {
	for attempt := 0; ; attempt++ {
		res, err := r.runGroup(ctx, group, spec)
		if err == nil || !errors.Is(err, ErrStaleRead) || attempt >= r.opts.StaleRetries {
			return res, err
		}
		r.staleRetries.Add(1)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("qclient: %w: %w", core.ErrCanceled, ctx.Err())
		case <-time.After(r.opts.StaleWait):
		}
	}
}

// shardFor returns the shard group covering node t, or nil.
func (r *Router) shardFor(t uint32) *shardGroup {
	for i := range r.shards {
		if g := &r.shards[i]; t >= g.lo && t < g.hi {
			return g
		}
	}
	return nil
}

// Query answers one v2 query through the cluster. Sharded routers
// scatter many-target queries across shard groups by target scope and
// merge the per-shard results back in request order; single-target
// queries go to the shard covering the target. Unsharded routers use
// the full-coverage group. Hedging, failover and the MinEpoch wait
// apply per group.
//
// Ranked-alternatives requests (QuerySpec.K > 0) are single-target
// reads: they route to the shard covering T like any other single, and
// because the ranked answer is a deterministic function of the pinned
// snapshot, hedged and failed-over attempts return byte-identical
// rankings.
func (r *Router) Query(ctx context.Context, spec QuerySpec) (*QueryResult, error) {
	if spec.K != 0 && spec.Ts != nil {
		return nil, errors.New("qclient: k-paths requests are single-target (Ts must be nil)")
	}
	if len(r.shards) > 0 {
		if spec.Ts != nil {
			return r.scatterGather(ctx, spec)
		}
		g := r.shardFor(spec.T)
		if g == nil {
			return nil, fmt.Errorf("qclient: %w: no shard covers node %d", core.ErrNotCovered, spec.T)
		}
		return r.groupQuery(ctx, g.backends, spec)
	}
	return r.groupQuery(ctx, r.backends, spec)
}

// scatterGather fans a many-target query across the shard groups and
// merges per-shard answers back into request order. A target no shard
// covers fails as its own item (not the call); a shard whose group
// cannot answer at all fails the call, because a silently partial
// ranking is worse than an error.
func (r *Router) scatterGather(ctx context.Context, spec QuerySpec) (*QueryResult, error) {
	type part struct {
		g   *shardGroup
		idx []int // original positions of this shard's targets
		ts  []uint32
	}
	parts := make(map[*shardGroup]*part)
	order := make([]*part, 0, len(r.shards))
	out := &QueryResult{Items: make([]QueryItem, len(spec.Ts))}
	for i, t := range spec.Ts {
		g := r.shardFor(t)
		if g == nil {
			out.Items[i] = QueryItem{
				Dist: NoDist,
				Err:  fmt.Errorf("qclient: %w: no shard covers node %d", core.ErrNotCovered, t),
			}
			continue
		}
		p := parts[g]
		if p == nil {
			p = &part{g: g}
			parts[g] = p
			order = append(order, p)
		}
		p.idx = append(p.idx, i)
		p.ts = append(p.ts, t)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		minEpoch = ^uint64(0)
	)
	for _, p := range order {
		wg.Add(1)
		go func(p *part) {
			defer wg.Done()
			sub := spec
			sub.Ts = p.ts
			res, err := r.groupQuery(ctx, p.g.backends, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("qclient: shard [%d, %d): %w", p.g.lo, p.g.hi, err)
				}
				return
			}
			for j, i := range p.idx {
				out.Items[i] = res.Items[j]
			}
			if res.Epoch < minEpoch {
				minEpoch = res.Epoch
			}
			out.Cost.Lookups += res.Cost.Lookups
			out.Cost.Scanned += res.Cost.Scanned
			out.Cost.Expanded += res.Cost.Expanded
			out.Cost.Fallbacks += res.Cost.Fallbacks
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if len(order) > 0 {
		// The weakest freshness guarantee across the shards consulted.
		out.Epoch = minEpoch
	}
	return out, nil
}
