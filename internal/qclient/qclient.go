// Package qclient is the Go client for the TCP query protocol served by
// internal/qserver. A Client owns one connection; in the default serial
// mode requests are serialized over it, while a Client dialed with
// Options.Mux negotiates the multiplexed session mode and runs many
// requests in flight at once, demultiplexing replies by request id.
// Pool spreads concurrent callers over a fixed number of lazily-dialed
// connections to one server in either mode; Router spreads reads over a
// cluster of replicas — per-replica health and epoch tracking,
// read-your-epoch placement (QuerySpec.MinEpoch), hedged requests, and
// scatter-gather over scope-partitioned shards.
package qclient

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/wire"
)

// NoDist mirrors the oracle's unreachable sentinel on the client side.
const NoDist = ^uint32(0)

// Options tunes a Client.
type Options struct {
	// DialTimeout bounds connection establishment (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request/response round trip (0 = 10s).
	RequestTimeout time.Duration
	// Mux negotiates the multiplexed session mode at dial time: requests
	// carry ids, replies may complete out of order, and a timed-out or
	// canceled request abandons its id instead of tearing the connection
	// down. A peer that does not speak the hello frame (it closes the
	// connection on the unknown type) is transparently redialed in
	// serial mode — Muxed reports what was actually negotiated.
	Mux bool
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	return o
}

// Client is a single-connection protocol client. Methods are safe for
// concurrent use. In serial mode requests queue on the connection; in
// multiplexed mode they interleave, each identified by a request id.
type Client struct {
	opts Options

	// connMu guards connection identity and the closed flag only — it
	// is never held across network I/O, so Close always interrupts an
	// in-flight request instead of queueing behind it.
	connMu sync.Mutex
	conn   net.Conn
	closed bool

	// reqMu serializes whole round trips in serial mode and individual
	// frame writes in multiplexed mode. The reusable encode/read
	// buffers live under it.
	reqMu sync.Mutex
	br    *bufio.Reader
	bw    *bufio.Writer
	wbuf  []byte
	rbuf  []byte

	// Multiplexed-session state. pending maps in-flight request ids to
	// their reply channels; an abandoned id is simply removed, and the
	// demux loop counts its late reply in discarded instead of letting
	// it poison the stream.
	muxed     bool
	nextID    atomic.Uint64
	pendMu    sync.Mutex
	pending   map[uint64]chan wire.Message
	readErr   error
	demuxDone chan struct{}
	discarded atomic.Int64
}

// Dial connects to a query server at addr. With Options.Mux it also
// performs the hello handshake, falling back to a fresh serial
// connection when the peer predates the hello frame.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := dialConn(addr, opts)
	if err != nil {
		return nil, err
	}
	c := &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 4096),
		bw:   bufio.NewWriterSize(conn, 4096),
	}
	if opts.Mux {
		if err := c.handshake(); err != nil {
			// A v1 peer closes the connection on the unknown hello type
			// (there is no error frame to distinguish): redial fresh and
			// run serial, byte-for-byte the v1 protocol.
			conn.Close()
			conn, err = dialConn(addr, opts)
			if err != nil {
				return nil, err
			}
			c.conn = conn
			c.br = bufio.NewReaderSize(conn, 4096)
			c.bw = bufio.NewWriterSize(conn, 4096)
		}
	}
	return c, nil
}

func dialConn(addr string, opts Options) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("qclient: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return conn, nil
}

// handshake negotiates features on a fresh connection. On success with
// the mux bit granted it switches the client into multiplexed mode and
// starts the demux loop; with the bit refused the client stays serial
// on the same connection.
func (c *Client) handshake() error {
	if err := c.conn.SetDeadline(time.Now().Add(c.opts.DialTimeout)); err != nil {
		return err
	}
	if err := wire.WriteMessage(c.bw, &wire.Hello{Features: wire.FeatureMux}); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	resp, err := wire.ReadMessage(c.br)
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.HelloAck)
	if !ok {
		return fmt.Errorf("qclient: unexpected handshake response %v", resp.WireType())
	}
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	if ack.Features&wire.FeatureMux != 0 {
		c.muxed = true
		c.pending = make(map[uint64]chan wire.Message)
		c.demuxDone = make(chan struct{})
		go c.demux()
	}
	return nil
}

// Muxed reports whether the multiplexed session mode was negotiated.
func (c *Client) Muxed() bool { return c.muxed }

// Discarded returns how many late replies to abandoned requests the
// demux loop has dropped on this connection.
func (c *Client) Discarded() int64 { return c.discarded.Load() }

// Close closes the underlying connection. It never waits for in-flight
// requests: closing the connection out-of-band is what interrupts
// them.
func (c *Client) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// ErrClosed is returned for requests on a closed client.
var ErrClosed = errors.New("qclient: client is closed")

// ErrStaleRead is returned when a response's epoch is behind the
// QuerySpec.MinEpoch the caller demanded (read-your-epoch violated).
var ErrStaleRead = errors.New("qclient: replica behind requested min-epoch")

// deadlineGrace is how long past the context deadline the client keeps
// listening for the server's typed cancellation reply (deadline
// truncation + one round trip, with margin).
const deadlineGrace = time.Second

// codeError maps a wire error code back to the oracle's error taxonomy,
// so errors.Is(err, core.ErrBudgetExceeded) etc. work across the
// network exactly as in-process. Codes without a taxonomy sentinel
// return nil (the caller falls back to the raw wire error).
func codeError(code uint16) error {
	switch code {
	case wire.CodeOutOfRange:
		return core.ErrNodeRange
	case wire.CodeNotCovered:
		return core.ErrNotCovered
	case wire.CodeBudget:
		return core.ErrBudgetExceeded
	case wire.CodeCanceled:
		return core.ErrCanceled
	case wire.CodeStale:
		return core.ErrStaleSnapshot
	default:
		return nil
	}
}

// typedError wraps a server error response so both the taxonomy
// sentinel (errors.Is) and the raw *wire.ErrorResponse (errors.As)
// remain reachable.
func typedError(e *wire.ErrorResponse) error {
	if sentinel := codeError(e.Code); sentinel != nil {
		return fmt.Errorf("qclient: %w: %w", sentinel, e)
	}
	return fmt.Errorf("qclient: %w", e)
}

// roundTrip sends req and reads one response under the request timeout.
func (c *Client) roundTrip(req wire.Message) (wire.Message, error) {
	return c.roundTripCtx(context.Background(), req)
}

// waitDeadline computes how long to keep listening for a reply: the
// request timeout, or the context deadline plus a grace window when the
// context carries one.
//
// An explicit context deadline overrides RequestTimeout in both
// directions: the server enforces it inside the query (it rides the
// frame as DeadlineMS) and then sends a typed reply carrying the
// best-known bound. Its timer starts at frame receipt, so the reply
// lands shortly *after* our deadline plus a network round trip — keep
// listening for that grace window rather than losing the degraded
// answer to a client timeout (or, for deadlines beyond RequestTimeout,
// abandoning a reply the server was explicitly told it had time to
// produce). The wait is capped at the protocol's deadline window:
// DeadlineMS is clamped to wire.MaxDeadlineMS on send, so waiting
// longer than that only risks blocking on a dead server.
func (c *Client) waitDeadline(ctx context.Context) time.Time {
	deadline := time.Now().Add(c.opts.RequestTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d.Add(deadlineGrace)
		if cap := time.Now().Add(wire.MaxDeadlineMS*time.Millisecond + deadlineGrace); deadline.After(cap) {
			deadline = cap
		}
	}
	return deadline
}

// roundTripCtx routes one request through the negotiated transport
// mode. Context cancellation is honored mid-flight in both modes: a
// fired context interrupts the serial read (and tears that connection
// down), while a multiplexed request just abandons its id.
func (c *Client) roundTripCtx(ctx context.Context, req wire.Message) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qclient: %w: %w", core.ErrCanceled, err)
	}
	if c.muxed {
		return c.muxRoundTrip(ctx, req)
	}
	return c.serialRoundTrip(ctx, req)
}

// serialRoundTrip is the v1 path: one request, then its response, on a
// connection this goroutine owns for the duration. The connection
// identity is read under connMu but I/O happens outside it, so Close —
// and a mid-flight context cancellation, which wakes the blocked read
// by expiring the connection deadline — interrupt rather than queue.
func (c *Client) serialRoundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	c.connMu.Lock()
	conn := c.conn
	c.connMu.Unlock()
	if conn == nil {
		return nil, ErrClosed
	}
	if err := conn.SetDeadline(c.waitDeadline(ctx)); err != nil {
		return nil, err
	}
	// Watch for mid-flight cancellation — with or without a deadline.
	// Expiring the connection deadline wakes the blocked read; the
	// serial stream is desynced either way, so the usual teardown
	// applies and the caller gets the taxonomy's canceled error.
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				_ = conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
	}
	fail := func(op string, err error) (wire.Message, error) {
		c.teardown(conn)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("qclient: %s: %w: %w", op, core.ErrCanceled, ctxErr)
		}
		return nil, fmt.Errorf("qclient: %s: %w", op, err)
	}
	c.wbuf = wire.AppendFrame(c.wbuf[:0], req)
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return fail("write", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail("flush", err)
	}
	payload, rbuf, err := wire.ReadFrame(c.br, c.rbuf)
	c.rbuf = rbuf
	if err != nil {
		// The serial protocol has no request ids: after a failed or
		// timed-out read the server's reply may still arrive later and
		// would be mistaken for the answer to the *next* request. Close
		// the connection so a desynced stream can never serve stale
		// answers.
		return fail("read", err)
	}
	resp, err := wire.Unmarshal(payload)
	if err != nil {
		return fail("read", err)
	}
	if e, ok := resp.(*wire.ErrorResponse); ok {
		return nil, typedError(e)
	}
	return resp, nil
}

// muxRoundTrip issues one request on a multiplexed session: allocate an
// id, register its reply channel, write the frame, and wait. A timeout
// or cancellation abandons the id — the connection stays healthy and
// the late reply is discarded by the demux loop when it arrives.
func (c *Client) muxRoundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	c.connMu.Lock()
	conn := c.conn
	c.connMu.Unlock()
	if conn == nil {
		return nil, ErrClosed
	}
	id := c.nextID.Add(1)
	ch := make(chan wire.Message, 1)
	c.pendMu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pendMu.Unlock()
		return nil, fmt.Errorf("qclient: read: %w", err)
	}
	c.pending[id] = ch
	c.pendMu.Unlock()

	c.reqMu.Lock()
	_ = conn.SetWriteDeadline(time.Now().Add(c.opts.RequestTimeout))
	c.wbuf = wire.AppendMuxFrame(c.wbuf[:0], id, req)
	_, err := c.bw.Write(c.wbuf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.reqMu.Unlock()
	if err != nil {
		// A half-written frame corrupts the stream for every request on
		// it: fail the whole session.
		c.abandon(id)
		c.failMux(err)
		return nil, fmt.Errorf("qclient: write: %w", err)
	}

	timer := time.NewTimer(time.Until(c.waitDeadline(ctx)))
	defer timer.Stop()
	ctxDone := ctx.Done()
	for {
		select {
		case resp := <-ch:
			if e, ok := resp.(*wire.ErrorResponse); ok {
				return nil, typedError(e)
			}
			return resp, nil
		case <-ctxDone:
			if errors.Is(ctx.Err(), context.Canceled) {
				c.abandon(id)
				return nil, fmt.Errorf("qclient: %w: %w", core.ErrCanceled, ctx.Err())
			}
			// Deadline passed: the server was told (DeadlineMS) and owes
			// a typed reply carrying the best-known bound — keep
			// listening until the grace timer instead of abandoning the
			// degraded answer.
			ctxDone = nil
		case <-timer.C:
			c.abandon(id)
			return nil, fmt.Errorf("qclient: request timed out: %w", os.ErrDeadlineExceeded)
		case <-c.demuxDone:
			c.pendMu.Lock()
			err := c.readErr
			c.pendMu.Unlock()
			return nil, fmt.Errorf("qclient: read: %w", err)
		}
	}
}

// abandon forgets an in-flight request id; the demux loop discards its
// reply if one ever arrives.
func (c *Client) abandon(id uint64) {
	c.pendMu.Lock()
	delete(c.pending, id)
	c.pendMu.Unlock()
}

// demux is the multiplexed session's read loop: it routes each reply to
// the channel registered under its id, and drops replies whose id was
// abandoned. Any read error is fatal to the session — waiters learn of
// it through demuxDone.
func (c *Client) demux() {
	var buf []byte
	for {
		id, payload, nb, err := wire.ReadMuxFrame(c.br, buf)
		buf = nb
		if err != nil {
			c.failMux(err)
			return
		}
		msg, err := wire.Unmarshal(payload)
		if err != nil {
			c.failMux(err)
			return
		}
		c.pendMu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.pendMu.Unlock()
		if !ok {
			c.discarded.Add(1)
			continue
		}
		ch <- msg // buffered; the demux loop never blocks on a waiter
	}
}

// failMux marks the multiplexed session dead: records the first error,
// wakes every waiter, and closes the connection so Alive turns false
// and Pool redials.
func (c *Client) failMux(err error) {
	c.pendMu.Lock()
	if c.readErr == nil {
		c.readErr = err
		close(c.demuxDone)
	}
	c.pendMu.Unlock()
	c.connMu.Lock()
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.connMu.Unlock()
}

// teardown closes a serial connection after an I/O failure (the desync
// guard). It only acts if conn is still the client's current
// connection.
func (c *Client) teardown(conn net.Conn) {
	c.connMu.Lock()
	if c.conn == conn {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.connMu.Unlock()
}

// Alive reports whether the client still holds a live connection (the
// serial desync guard and the mux session-failure path both tear dead
// connections down; Pool uses this to redial instead of recycling dead
// clients).
func (c *Client) Alive() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn != nil
}

// Distance asks for the distance between s and t. It returns the
// distance (NoDist if unreachable/unresolved) and the oracle method tag.
func (c *Client) Distance(s, t uint32) (uint32, uint8, error) {
	resp, err := c.roundTrip(&wire.DistanceRequest{S: s, T: t})
	if err != nil {
		return NoDist, 0, err
	}
	d, ok := resp.(*wire.DistanceResponse)
	if !ok {
		return NoDist, 0, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return d.Dist, d.Method, nil
}

// BatchItem is one target's answer in a Batch call. Err is non-nil
// when the server reported a per-target failure (its wire error code
// is preserved in the wrapped *wire.ErrorResponse).
type BatchItem struct {
	Dist   uint32
	Method uint8
	Err    error
}

// Batch asks for the distance from s to every target in one round trip
// (one-to-many ranking). Results come back in target order; per-target
// failures are reported in the item, not as a call error. The server
// answers the whole batch from one oracle snapshot.
func (c *Client) Batch(s uint32, ts []uint32) ([]BatchItem, error) {
	if len(ts) > wire.MaxBatchTargets {
		return nil, fmt.Errorf("qclient: batch of %d targets exceeds the %d cap", len(ts), wire.MaxBatchTargets)
	}
	resp, err := c.roundTrip(&wire.BatchRequest{S: s, Ts: ts})
	if err != nil {
		return nil, err
	}
	br, ok := resp.(*wire.BatchResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	if len(br.Items) != len(ts) {
		return nil, fmt.Errorf("qclient: batch returned %d items for %d targets", len(br.Items), len(ts))
	}
	items := make([]BatchItem, len(br.Items))
	for i, it := range br.Items {
		items[i] = BatchItem{Dist: it.Dist, Method: it.Method}
		if it.Code != 0 {
			items[i].Err = typedError(&wire.ErrorResponse{Code: it.Code, Message: "per-target query failed"})
		}
	}
	return items, nil
}

// QuerySpec describes one v2 request-scoped query. The zero overrides
// reproduce the legacy calls; the context passed to Query supplies the
// deadline (sent to the server as a relative deadline and enforced
// inside its fallback search loop).
type QuerySpec struct {
	S uint32
	// T is the single target; ignored when Ts is non-nil.
	T uint32
	// Ts, when non-nil, makes this a one-to-many request.
	Ts []uint32
	// K, when positive, makes this a ranked-alternatives request: up to
	// K loopless s→t paths in (distance, length, lexicographic) order,
	// returned in QueryResult.Paths. Single-target only (Ts must be
	// nil), capped at core.MaxK, and implies WantPath. K=1 returns
	// exactly the single shortest path the plain query would. Routers
	// treat K like any other read: the answer is a deterministic
	// function of the pinned snapshot, so hedging and replica failover
	// stay safe.
	K int
	// Policy overrides the fallback for this request
	// (core.PolicyDefault/Full/Estimate/TableOnly).
	Policy core.Policy
	// Budget caps each fallback search's node expansions (0 = none).
	Budget int
	// WantPath asks for the path(s); WantStats for the cost counters.
	WantPath  bool
	WantStats bool
	// Parallel asks the server to fan a one-to-many request across up
	// to this many workers (0 or 1 = sequential; the server clamps to
	// its own ceiling). Answers are bit-identical either way.
	Parallel int
	// MinEpoch demands the answer come from a snapshot at this cluster
	// epoch or later — the read-your-epoch guarantee after a write: pass
	// the epoch the writer returned and a lagging replica's answer is
	// refused with ErrStaleRead instead of silently serving the past. A
	// Router retries stale reads on other replicas; a bare Client or
	// Pool surfaces the error. 0 disables the check.
	MinEpoch uint64
}

// QueryItem is one target's answer in a QueryResult. Err wraps the
// error taxonomy (core.ErrBudgetExceeded, core.ErrCanceled, ...); for
// budget/cancel outcomes Dist still carries the server's best-known
// upper bound.
type QueryItem struct {
	Dist   uint32
	Method uint8
	Path   []uint32
	Err    error
}

// QueryResult is the v2 response: one item per target (exactly one for
// single-target requests), the answering snapshot's epoch, and — when
// QuerySpec.WantStats was set — the per-request cost counters.
//
// For a ranked-alternatives request (QuerySpec.K > 0) Paths carries the
// ranked list and Items holds one synthetic entry mirroring the best
// path — so consumers that only look at Items[0] see exactly the
// single-path answer. A budget or deadline that expired mid-enumeration
// surfaces as that item's Err with the paths found so far in Paths.
type QueryResult struct {
	Items []QueryItem
	Paths []core.PathAlt
	Epoch uint64
	Cost  core.Cost
}

// Query sends one v2 request-scoped query. The context deadline (if
// any) rides the frame as a relative deadline-ms so the server can
// honor it inside the query; budget and cancellation outcomes come
// back as per-item errors wrapping the same sentinels the in-process
// API returns. A single-target request reports query errors on the
// lone item, not as a call error.
func (c *Client) Query(ctx context.Context, spec QuerySpec) (*QueryResult, error) {
	if spec.K != 0 {
		return c.queryKPaths(ctx, spec)
	}
	if len(spec.Ts) > wire.MaxBatchTargets {
		return nil, fmt.Errorf("qclient: query of %d targets exceeds the %d cap", len(spec.Ts), wire.MaxBatchTargets)
	}
	if spec.Budget < 0 {
		// ClampU32 would silently turn a negative budget into "no
		// budget" — the most expensive interpretation of invalid input;
		// refuse it like the HTTP handler and the CLI do.
		return nil, fmt.Errorf("qclient: negative budget %d", spec.Budget)
	}
	if spec.Parallel < 0 {
		return nil, fmt.Errorf("qclient: negative parallel %d", spec.Parallel)
	}
	req := &wire.QueryRequest{
		S:      spec.S,
		T:      spec.T,
		Budget: wire.ClampU32(spec.Budget),
		Policy: uint8(spec.Policy),
		// The wire field is one byte; 255 workers already exceeds any
		// server's clamp, so saturating loses nothing.
		Parallel: uint8(min(spec.Parallel, 255)),
	}
	if spec.WantPath {
		req.Flags |= wire.QueryWantPath
	}
	if spec.WantStats {
		req.Flags |= wire.QueryWantStats
	}
	if spec.Ts != nil {
		req.Flags |= wire.QueryMany
		req.Ts = spec.Ts
	}
	// Beyond the protocol cap a deadline is indistinguishable from
	// none; deadlineMS clamps rather than have the server reject a
	// query an ordinary long-lived context would carry.
	req.DeadlineMS = deadlineMS(ctx)
	resp, err := c.roundTripCtx(ctx, req)
	if err != nil {
		return nil, err
	}
	qr, ok := resp.(*wire.QueryResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	if spec.MinEpoch > 0 && qr.Epoch < spec.MinEpoch {
		return nil, fmt.Errorf("%w: at epoch %d, need %d", ErrStaleRead, qr.Epoch, spec.MinEpoch)
	}
	want := 1
	if spec.Ts != nil {
		want = len(spec.Ts)
	}
	if len(qr.Items) != want {
		return nil, fmt.Errorf("qclient: query returned %d items for %d targets", len(qr.Items), want)
	}
	out := &QueryResult{
		Items: make([]QueryItem, len(qr.Items)),
		Epoch: qr.Epoch,
		Cost: core.Cost{
			Lookups:   int(qr.Lookups),
			Scanned:   int(qr.Scanned),
			Expanded:  int(qr.Expanded),
			Fallbacks: int(qr.Fallbacks),
		},
	}
	for i, it := range qr.Items {
		out.Items[i] = QueryItem{Dist: it.Dist, Method: it.Method, Path: it.Path}
		if it.Code != 0 {
			out.Items[i].Err = typedError(&wire.ErrorResponse{Code: it.Code, Message: "query failed"})
		}
	}
	return out, nil
}

// deadlineMS converts a context deadline to the relative wire field,
// clamped to the protocol cap (shared by the query and kpaths frames).
func deadlineMS(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1 // already (nearly) expired: let the server refuse it
	}
	if ms > wire.MaxDeadlineMS {
		ms = wire.MaxDeadlineMS
	}
	return wire.ClampU32(int(ms))
}

// queryKPaths is the K>0 arm of Query: one ranked-alternatives frame,
// answered from one pinned snapshot on the server.
func (c *Client) queryKPaths(ctx context.Context, spec QuerySpec) (*QueryResult, error) {
	switch {
	case spec.K < 0 || spec.K > core.MaxK:
		return nil, fmt.Errorf("qclient: k %d outside [1, %d]", spec.K, core.MaxK)
	case spec.Ts != nil:
		return nil, errors.New("qclient: k-paths requests are single-target (Ts must be nil)")
	case spec.Budget < 0:
		return nil, fmt.Errorf("qclient: negative budget %d", spec.Budget)
	}
	req := &wire.KPathsRequest{
		S:          spec.S,
		T:          spec.T,
		K:          uint16(spec.K),
		DeadlineMS: deadlineMS(ctx),
		Budget:     wire.ClampU32(spec.Budget),
		Policy:     uint8(spec.Policy),
	}
	if spec.WantStats {
		req.Flags |= wire.KPathsWantStats
	}
	resp, err := c.roundTripCtx(ctx, req)
	if err != nil {
		return nil, err
	}
	kr, ok := resp.(*wire.KPathsResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	if spec.MinEpoch > 0 && kr.Epoch < spec.MinEpoch {
		return nil, fmt.Errorf("%w: at epoch %d, need %d", ErrStaleRead, kr.Epoch, spec.MinEpoch)
	}
	out := &QueryResult{
		Items: make([]QueryItem, 1),
		Paths: make([]core.PathAlt, len(kr.Items)),
		Epoch: kr.Epoch,
		Cost: core.Cost{
			Lookups:   int(kr.Lookups),
			Scanned:   int(kr.Scanned),
			Expanded:  int(kr.Expanded),
			Fallbacks: int(kr.Fallbacks),
		},
	}
	for i, it := range kr.Items {
		out.Paths[i] = core.PathAlt{Dist: it.Dist, Path: it.Path}
	}
	// The synthetic item mirrors the best path so Items[0] consumers see
	// the single-path answer; an empty enumeration is an unreachable
	// target unless the response code says otherwise.
	item := QueryItem{Dist: NoDist, Method: kr.Method}
	if len(out.Paths) > 0 {
		item.Dist = out.Paths[0].Dist
		item.Path = out.Paths[0].Path
	}
	if kr.Code != 0 {
		item.Err = typedError(&wire.ErrorResponse{Code: kr.Code, Message: "k-paths enumeration cut short"})
	}
	out.Items[0] = item
	return out, nil
}

// Path asks for a shortest path between s and t (nil if none).
func (c *Client) Path(s, t uint32) ([]uint32, uint8, error) {
	resp, err := c.roundTrip(&wire.PathRequest{S: s, T: t})
	if err != nil {
		return nil, 0, err
	}
	p, ok := resp.(*wire.PathResponse)
	if !ok {
		return nil, 0, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return p.Path, p.Method, nil
}

// Stats fetches the server's oracle statistics.
func (c *Client) Stats() (*wire.StatsResponse, error) {
	resp, err := c.roundTrip(&wire.StatsRequest{})
	if err != nil {
		return nil, err
	}
	st, ok := resp.(*wire.StatsResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return st, nil
}

// ReplStatus asks the server for its place in the replication
// topology: role, serving epoch, retained delta window. Routers use it
// to seed epoch tracking; servers predating the frame answer with a
// bad-request error.
func (c *Client) ReplStatus() (*wire.ReplStatusResponse, error) {
	resp, err := c.roundTrip(&wire.ReplStatusRequest{})
	if err != nil {
		return nil, err
	}
	st, ok := resp.(*wire.ReplStatusResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return st, nil
}

// Ping round-trips a token and reports the latency.
func (c *Client) Ping() (time.Duration, error) {
	token := uint64(time.Now().UnixNano())
	start := time.Now()
	resp, err := c.roundTrip(&wire.PingRequest{Token: token})
	if err != nil {
		return 0, err
	}
	pong, ok := resp.(*wire.PingResponse)
	if !ok {
		return 0, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	if pong.Token != token {
		return 0, errors.New("qclient: pong token mismatch")
	}
	return time.Since(start), nil
}

// Pool is a fixed-size pool of clients for concurrent callers,
// dialing lazily: construction allocates slots without touching the
// network, and each slot connects on its first borrow. A pooled client
// whose connection died (the desync guard closes on any i/o failure)
// is transparently redialed at the next borrow, so a backend that is
// down at construction — or dies and comes back mid-run — costs
// exactly the requests that raced the outage, never the pool.
// Multiplexed clients (Options.Mux) are handed out shared rather than
// exclusively: many callers can run in flight on one connection at
// once, so the pool size caps connections, not concurrency.
type Pool struct {
	addr    string
	opts    Options
	clients chan *Client

	mu  sync.Mutex
	all []*Client
}

// NewPool creates a pool of size connection slots for addr. No
// connection is attempted yet — a dead backend surfaces as request
// errors, then stops mattering the moment it comes up — so the error
// is always nil and exists only for call-site compatibility.
func NewPool(addr string, size int, opts Options) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{addr: addr, opts: opts, clients: make(chan *Client, size)}
	for i := 0; i < size; i++ {
		// A placeholder client is simply "not alive": borrow's redial
		// path dials it on first use, the same way it revives a died one.
		c := &Client{opts: opts.withDefaults()}
		c.closed = true
		p.clients <- c
		p.all = append(p.all, c)
	}
	return p, nil
}

// borrow takes a client, redialing a dead one. On redial failure the
// dead client goes back to the pool — its slot stays usable for the
// next attempt — and the dial error is reported. A cancellation while
// waiting reports through the taxonomy (errors.Is core.ErrCanceled).
// A multiplexed client's slot returns to the pool immediately, so
// concurrent borrowers share the connection instead of queueing.
func (p *Pool) borrow(ctx context.Context) (*Client, error) {
	select {
	case c := <-p.clients:
		if c.Alive() {
			if c.Muxed() {
				p.clients <- c
			}
			return c, nil
		}
		nc, err := Dial(p.addr, p.opts)
		if err != nil {
			p.clients <- c
			return nil, err
		}
		// Replace the dead entry so p.all stays bounded at the pool
		// size no matter how much connection churn the redials absorb.
		p.mu.Lock()
		for i, old := range p.all {
			if old == c {
				p.all[i] = nc
				break
			}
		}
		p.mu.Unlock()
		if nc.Muxed() {
			p.clients <- nc
		}
		return nc, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("qclient: %w: %w", core.ErrCanceled, ctx.Err())
	}
}

// release returns a client to the pool. Multiplexed clients were never
// removed — their slot went straight back at borrow time.
func (p *Pool) release(c *Client) {
	if c.Muxed() {
		return
	}
	p.clients <- c
}

// Distance borrows a client for one distance query. ctx bounds the wait
// for a free connection (the request itself uses the client timeout).
func (p *Pool) Distance(ctx context.Context, s, t uint32) (uint32, uint8, error) {
	c, err := p.borrow(ctx)
	if err != nil {
		return NoDist, 0, err
	}
	defer p.release(c)
	return c.Distance(s, t)
}

// Path borrows a client for one path query.
func (p *Pool) Path(ctx context.Context, s, t uint32) ([]uint32, uint8, error) {
	c, err := p.borrow(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer p.release(c)
	return c.Path(s, t)
}

// Batch borrows a client for one one-to-many query.
func (p *Pool) Batch(ctx context.Context, s uint32, ts []uint32) ([]BatchItem, error) {
	c, err := p.borrow(ctx)
	if err != nil {
		return nil, err
	}
	defer p.release(c)
	return c.Batch(s, ts)
}

// Query borrows a client for one v2 request-scoped query; ctx bounds
// both the wait for a free connection and the request itself.
func (p *Pool) Query(ctx context.Context, spec QuerySpec) (*QueryResult, error) {
	c, err := p.borrow(ctx)
	if err != nil {
		return nil, err
	}
	defer p.release(c)
	return c.Query(ctx, spec)
}

// ReplStatus borrows a client for one replication status probe.
func (p *Pool) ReplStatus(ctx context.Context) (*wire.ReplStatusResponse, error) {
	c, err := p.borrow(ctx)
	if err != nil {
		return nil, err
	}
	defer p.release(c)
	return c.ReplStatus()
}

// Close closes every connection the pool ever dialed.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.all {
		c.Close()
	}
}
