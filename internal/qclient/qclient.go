// Package qclient is the Go client for the TCP query protocol served by
// internal/qserver. A Client owns one connection and serializes requests
// over it; Pool multiplexes a fixed number of connections for concurrent
// callers.
package qclient

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vicinity/internal/wire"
)

// NoDist mirrors the oracle's unreachable sentinel on the client side.
const NoDist = ^uint32(0)

// Options tunes a Client.
type Options struct {
	// DialTimeout bounds connection establishment (0 = 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each request/response round trip (0 = 10s).
	RequestTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	return o
}

// Client is a single-connection protocol client. Methods are safe for
// concurrent use; requests are serialized on the connection.
type Client struct {
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a query server at addr.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("qclient: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 4096),
		bw:   bufio.NewWriterSize(conn, 4096),
	}, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// ErrClosed is returned for requests on a closed client.
var ErrClosed = errors.New("qclient: client is closed")

// roundTrip sends req and reads one response under the request timeout.
func (c *Client) roundTrip(req wire.Message) (wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	deadline := time.Now().Add(c.opts.RequestTimeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := wire.WriteMessage(c.bw, req); err != nil {
		return nil, fmt.Errorf("qclient: write: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("qclient: flush: %w", err)
	}
	resp, err := wire.ReadMessage(c.br)
	if err != nil {
		return nil, fmt.Errorf("qclient: read: %w", err)
	}
	if e, ok := resp.(*wire.ErrorResponse); ok {
		return nil, e
	}
	return resp, nil
}

// Distance asks for the distance between s and t. It returns the
// distance (NoDist if unreachable/unresolved) and the oracle method tag.
func (c *Client) Distance(s, t uint32) (uint32, uint8, error) {
	resp, err := c.roundTrip(&wire.DistanceRequest{S: s, T: t})
	if err != nil {
		return NoDist, 0, err
	}
	d, ok := resp.(*wire.DistanceResponse)
	if !ok {
		return NoDist, 0, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return d.Dist, d.Method, nil
}

// BatchItem is one target's answer in a Batch call. Err is non-nil
// when the server reported a per-target failure (its wire error code
// is preserved in the wrapped *wire.ErrorResponse).
type BatchItem struct {
	Dist   uint32
	Method uint8
	Err    error
}

// Batch asks for the distance from s to every target in one round trip
// (one-to-many ranking). Results come back in target order; per-target
// failures are reported in the item, not as a call error. The server
// answers the whole batch from one oracle snapshot.
func (c *Client) Batch(s uint32, ts []uint32) ([]BatchItem, error) {
	if len(ts) > wire.MaxBatchTargets {
		return nil, fmt.Errorf("qclient: batch of %d targets exceeds the %d cap", len(ts), wire.MaxBatchTargets)
	}
	resp, err := c.roundTrip(&wire.BatchRequest{S: s, Ts: ts})
	if err != nil {
		return nil, err
	}
	br, ok := resp.(*wire.BatchResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	if len(br.Items) != len(ts) {
		return nil, fmt.Errorf("qclient: batch returned %d items for %d targets", len(br.Items), len(ts))
	}
	items := make([]BatchItem, len(br.Items))
	for i, it := range br.Items {
		items[i] = BatchItem{Dist: it.Dist, Method: it.Method}
		if it.Code != 0 {
			items[i].Err = &wire.ErrorResponse{Code: it.Code, Message: "per-target query failed"}
		}
	}
	return items, nil
}

// Path asks for a shortest path between s and t (nil if none).
func (c *Client) Path(s, t uint32) ([]uint32, uint8, error) {
	resp, err := c.roundTrip(&wire.PathRequest{S: s, T: t})
	if err != nil {
		return nil, 0, err
	}
	p, ok := resp.(*wire.PathResponse)
	if !ok {
		return nil, 0, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return p.Path, p.Method, nil
}

// Stats fetches the server's oracle statistics.
func (c *Client) Stats() (*wire.StatsResponse, error) {
	resp, err := c.roundTrip(&wire.StatsRequest{})
	if err != nil {
		return nil, err
	}
	st, ok := resp.(*wire.StatsResponse)
	if !ok {
		return nil, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	return st, nil
}

// Ping round-trips a token and reports the latency.
func (c *Client) Ping() (time.Duration, error) {
	token := uint64(time.Now().UnixNano())
	start := time.Now()
	resp, err := c.roundTrip(&wire.PingRequest{Token: token})
	if err != nil {
		return 0, err
	}
	pong, ok := resp.(*wire.PingResponse)
	if !ok {
		return 0, fmt.Errorf("qclient: unexpected response %v", resp.WireType())
	}
	if pong.Token != token {
		return 0, errors.New("qclient: pong token mismatch")
	}
	return time.Since(start), nil
}

// Pool is a fixed-size pool of clients for concurrent callers.
type Pool struct {
	clients chan *Client
	all     []*Client
}

// NewPool dials size connections to addr.
func NewPool(addr string, size int, opts Options) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{clients: make(chan *Client, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients <- c
		p.all = append(p.all, c)
	}
	return p, nil
}

// Distance borrows a client for one distance query. ctx bounds the wait
// for a free connection (the request itself uses the client timeout).
func (p *Pool) Distance(ctx context.Context, s, t uint32) (uint32, uint8, error) {
	select {
	case c := <-p.clients:
		defer func() { p.clients <- c }()
		return c.Distance(s, t)
	case <-ctx.Done():
		return NoDist, 0, ctx.Err()
	}
}

// Path borrows a client for one path query.
func (p *Pool) Path(ctx context.Context, s, t uint32) ([]uint32, uint8, error) {
	select {
	case c := <-p.clients:
		defer func() { p.clients <- c }()
		return c.Path(s, t)
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// Batch borrows a client for one one-to-many query.
func (p *Pool) Batch(ctx context.Context, s uint32, ts []uint32) ([]BatchItem, error) {
	select {
	case c := <-p.clients:
		defer func() { p.clients <- c }()
		return c.Batch(s, ts)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	for _, c := range p.all {
		c.Close()
	}
}
