package qclient_test

// Black-box tests against hand-rolled fake servers; the happy path
// against the real server lives in internal/qserver's integration tests.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"vicinity/internal/core"
	"vicinity/internal/qclient"
	"vicinity/internal/wire"
)

// fakeServer accepts one connection and passes it to handle.
func fakeServer(t *testing.T, handle func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		handle(conn)
	}()
	return ln.Addr().String()
}

func TestDialFailure(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := qclient.Dial(addr, qclient.Options{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestRequestTimeout(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		// Read the request and never answer.
		_, _ = wire.ReadMessage(conn)
		time.Sleep(2 * time.Second)
	})
	c, err := qclient.Dial(addr, qclient.Options{RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, _, err = c.Distance(1, 2)
	if err == nil {
		t.Fatal("silent server produced no error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, err := wire.ReadMessage(conn); err != nil {
			return
		}
		_ = wire.WriteMessage(conn, &wire.ErrorResponse{
			Code: wire.CodeNotCovered, Message: "node 7 not covered",
		})
	})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Distance(7, 8)
	var werr *wire.ErrorResponse
	if !errors.As(err, &werr) || werr.Code != wire.CodeNotCovered {
		t.Fatalf("err = %v, want CodeNotCovered", err)
	}
	// Wire codes map back to the oracle's error taxonomy.
	if !errors.Is(err, core.ErrNotCovered) {
		t.Fatalf("err = %v, want errors.Is ErrNotCovered", err)
	}
}

func TestUnexpectedResponseType(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, err := wire.ReadMessage(conn); err != nil {
			return
		}
		_ = wire.WriteMessage(conn, &wire.PingResponse{Token: 1})
	})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Distance(1, 2); err == nil {
		t.Fatal("mismatched response type accepted")
	}
}

func TestPongTokenMismatch(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, err := wire.ReadMessage(conn); err != nil {
			return
		}
		_ = wire.WriteMessage(conn, &wire.PingResponse{Token: 12345})
	})
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Ping(); err == nil {
		t.Fatal("token mismatch accepted")
	}
}

// TestPoolRedialsOnRecovery pins the lazy-pool contract: a pool to a
// dead backend constructs fine, fails per-request while the backend is
// down, and starts answering again — no pool restart — once something
// listens at the address.
func TestPoolRedialsOnRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	p, err := qclient.NewPool(addr, 3, qclient.Options{DialTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("lazy pool construction to dead backend failed: %v", err)
	}
	defer p.Close()
	ctx := context.Background()
	if _, _, err := p.Distance(ctx, 1, 2); err == nil {
		t.Fatal("request to dead backend succeeded")
	}

	// Backend comes back on the same address; the next borrow redials.
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadMessage(conn); err != nil {
			return
		}
		_ = wire.WriteMessage(conn, &wire.DistanceResponse{Dist: 42, Method: 1})
	}()
	d, _, err := p.Distance(ctx, 1, 2)
	if err != nil {
		t.Fatalf("request after backend recovery: %v", err)
	}
	if d != 42 {
		t.Fatalf("dist = %d, want 42", d)
	}
}

func TestCloseIdempotent(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) { time.Sleep(time.Second) })
	c, err := qclient.Dial(addr, qclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestTimeoutClosesConnection pins the desync guard: the protocol has
// no request ids, so after a read timeout the connection must be torn
// down — a late reply must never be read as the answer to the next
// request.
func TestTimeoutClosesConnection(t *testing.T) {
	release := make(chan struct{})
	addr := fakeServer(t, func(conn net.Conn) {
		if _, err := wire.ReadMessage(conn); err != nil {
			return
		}
		<-release // reply only after the client has given up
		_ = wire.WriteMessage(conn, &wire.DistanceResponse{Dist: 777, Method: 1})
	})
	c, err := qclient.Dial(addr, qclient.Options{RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Distance(1, 2); err == nil {
		t.Fatal("stalled request succeeded")
	}
	close(release)
	time.Sleep(20 * time.Millisecond) // let the stale reply land, if anywhere
	if _, _, err := c.Distance(3, 4); !errors.Is(err, qclient.ErrClosed) {
		t.Fatalf("reused desynced connection: %v (a stale 777 answer would be silent corruption)", err)
	}
}
