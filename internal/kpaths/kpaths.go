// Package kpaths implements a deviation-based loopless k-shortest
// simple-paths engine (Yen's algorithm with Lawler's deviation-index
// optimization) on top of the repo's traversal primitives.
//
// The engine does not search for the first path itself: the caller
// supplies the root path (in the serving stack it comes from the
// oracle's table/bidirectional machinery), and Enumerate derives the
// remaining k-1 alternatives by spur searches. Accepted paths are
// threaded into a shared-prefix deviation tree, so the banned next-hop
// set at every spur node is exactly the children of one tree node —
// no per-spur scan over all accepted paths. Candidates wait in a
// bounded indexed min-heap (internal/heap.Min) that grows by doubling.
//
// Budget and cancellation follow traverse.Limits semantics exactly:
// the node budget is one shared pool charged per settled expansion
// across all spur searches, the Done channel is polled every
// limitCheckEvery expansions, and every distance sum goes through
// traverse.SatAdd. When a limit fires mid-enumeration the engine
// returns the loopless paths accepted so far with OutcomeBudget or
// OutcomeStopped, so callers can surface a typed partial result.
package kpaths

import (
	"sort"

	"vicinity/internal/graph"
	"vicinity/internal/heap"
	"vicinity/internal/traverse"
)

// NoDist is the sentinel distance for unreachable nodes.
const NoDist = traverse.NoDist

// limitCheckEvery mirrors traverse: budgets are enforced on every
// expansion, the Done channel poll is amortized to every 64th.
const limitCheckEvery = 64

// PathAlt is one ranked alternative: a loopless s→t path and its
// length (hops on unweighted graphs, weighted distance otherwise).
type PathAlt struct {
	Dist uint32
	Path []uint32
}

// Stats reports the traversal cost of one enumeration, in the same
// currency as the oracle's Cost counters.
type Stats struct {
	Expanded uint32 // nodes settled across all spur searches
	Searches uint32 // spur searches run
}

// devKid is one banned deviation edge at a tree node: an accepted path
// with this node's prefix continues to Next, via tree node Node.
type devKid struct {
	next uint32
	node int32
}

// devNode is one prefix of an accepted path in the deviation tree. Its
// children are exactly the next-hops used by accepted paths sharing
// the prefix — the edge set a spur search at that prefix must avoid.
type devNode struct {
	kids []devKid
}

// Engine holds the reusable scratch state for enumerations over one
// graph: a Dijkstra node map and frontier, an epoch-stamped banned-node
// mark set, the deviation tree, and the candidate heap. An Engine may
// be reused across calls but is not safe for concurrent use.
type Engine struct {
	g  *graph.Graph
	nm *traverse.NodeMap
	pq *heap.Min

	// banned-node marks for the current spur's root prefix,
	// epoch-stamped so clearing between spurs is O(1).
	mark      []uint32
	markEpoch uint32

	tree  []devNode
	cands []candidate
	ch    *heap.Min // candidate heap over cands indices
	chCap int
	seen  map[string]struct{}

	scratch []byte // dedup key assembly
}

// candidate is a generated-but-not-yet-accepted deviation path.
type candidate struct {
	alt    PathAlt
	devIdx int // index in alt.Path where it deviated from its parent
	done   bool
}

// NewEngine returns an Engine for enumerations over g.
func NewEngine(g *graph.Graph) *Engine {
	n := g.NumNodes()
	return &Engine{
		g:         g,
		nm:        traverse.NewNodeMap(n),
		pq:        heap.NewMin(n),
		mark:      make([]uint32, n),
		markEpoch: 0,
	}
}

// Graph returns the graph this engine enumerates over.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Enumerate returns up to k loopless s→t paths in ranked order,
// starting from the caller-supplied root path. The output is sorted by
// (dist, length, lexicographic path), deduplicated, and always
// contains the root (first by construction on exact roots). The
// returned Outcome is OutcomeDone when enumeration ran to completion
// (fewer than k paths means the graph has no more loopless paths), or
// OutcomeBudget/OutcomeStopped when lim cut it short — the paths
// accepted so far are still returned.
//
// The root path must be a simple path whose endpoints are the query's
// s and t; root.Dist is trusted as its length. k <= 1 or a degenerate
// root (empty, or a single node for s==t) short-circuits to just the
// root with zero cost.
func (e *Engine) Enumerate(root PathAlt, k int, lim traverse.Limits) ([]PathAlt, Stats, traverse.Outcome) {
	var st Stats
	if len(root.Path) == 0 {
		return nil, st, traverse.OutcomeDone
	}
	accepted := []PathAlt{root}
	if k <= 1 || len(root.Path) == 1 {
		return accepted, st, traverse.OutcomeDone
	}

	e.resetRun()
	t := root.Path[len(root.Path)-1]
	e.rememberPath(root.Path)
	e.threadPath(root.Path)

	limited := lim.NodeBudget > 0
	outcome := traverse.OutcomeDone

	last := root
	lastDev := 0
	prefix := make([]uint32, 0, len(root.Path))
	prefixDist := make([]uint32, 0, len(root.Path))

	for len(accepted) < k {
		// Generate deviations of the most recently accepted path.
		// Lawler: spur indices before the path's own deviation index
		// were already tried when its parent was expanded.
		p := last.Path
		e.prefixDists(p, &prefixDist)
		node := int32(0) // tree node of prefix p[0..i]
		for i := 0; i <= len(p)-2; i++ {
			if i > 0 {
				node = e.treeChild(node, p[i])
			}
			if i < lastDev {
				continue
			}
			rem := 0
			if limited {
				rem = lim.NodeBudget - int(st.Expanded)
				if rem <= 0 {
					outcome = traverse.OutcomeBudget
					break
				}
			}
			spur := p[i]
			prefix = append(prefix[:0], p[:i]...)
			e.markNodes(prefix)
			banned := e.tree[node].kids
			sd, ok, oc := e.spurSearch(spur, t, banned, &st, rem, lim.Done)
			if ok {
				total := traverse.SatAdd(prefixDist[i], sd)
				if total != NoDist {
					path := make([]uint32, 0, i+1)
					path = append(path, p[:i]...)
					path = e.appendSpurPath(path, spur, t)
					e.addCandidate(PathAlt{Dist: total, Path: path}, i)
				}
			}
			if oc != traverse.OutcomeDone {
				outcome = oc
				break
			}
		}
		if outcome != traverse.OutcomeDone {
			break
		}
		if e.ch == nil || e.ch.Empty() {
			break
		}
		id, _ := e.ch.Pop()
		c := &e.cands[id]
		c.done = true
		accepted = append(accepted, c.alt)
		e.threadPath(c.alt.Path)
		last, lastDev = c.alt, c.devIdx
	}

	sortPaths(accepted)
	return accepted, st, outcome
}

// resetRun clears per-enumeration state (the per-spur search state is
// epoch-stamped and cleared lazily).
func (e *Engine) resetRun() {
	e.tree = e.tree[:0]
	e.tree = append(e.tree, devNode{})
	e.cands = e.cands[:0]
	e.ch = nil
	e.chCap = 0
	e.seen = make(map[string]struct{}, 16)
}

// markNodes stamps the given nodes as banned for the next spur search.
func (e *Engine) markNodes(nodes []uint32) {
	e.markEpoch++
	if e.markEpoch == 0 {
		for i := range e.mark {
			e.mark[i] = 0
		}
		e.markEpoch = 1
	}
	for _, v := range nodes {
		e.mark[v] = e.markEpoch
	}
}

// treeChild returns the tree node reached from parent via next-hop x.
// The child must exist: threadPath inserted it when the path carrying
// this prefix was accepted.
func (e *Engine) treeChild(parent int32, x uint32) int32 {
	for _, kid := range e.tree[parent].kids {
		if kid.next == x {
			return kid.node
		}
	}
	panic("kpaths: accepted path missing from deviation tree")
}

// threadPath inserts an accepted path into the deviation tree,
// creating nodes for every new prefix.
func (e *Engine) threadPath(p []uint32) {
	cur := int32(0)
	for i := 1; i < len(p); i++ {
		x := p[i]
		found := int32(-1)
		for _, kid := range e.tree[cur].kids {
			if kid.next == x {
				found = kid.node
				break
			}
		}
		if found < 0 {
			found = int32(len(e.tree))
			e.tree = append(e.tree, devNode{})
			e.tree[cur].kids = append(e.tree[cur].kids, devKid{next: x, node: found})
		}
		cur = found
	}
}

// prefixDists fills out[i] with the distance of p[0..i] along p.
func (e *Engine) prefixDists(p []uint32, out *[]uint32) {
	d := (*out)[:0]
	d = append(d, 0)
	for i := 1; i < len(p); i++ {
		w := uint32(1)
		if e.g.Weighted() {
			ew, ok := e.g.EdgeWeight(p[i-1], p[i])
			if !ok {
				ew = NoDist // defensive: root from a different snapshot
			}
			w = ew
		}
		d = append(d, traverse.SatAdd(d[i-1], w))
	}
	*out = d
}

// spurSearch runs a Dijkstra (uniform weights double as BFS) from spur
// to t, skipping marked nodes entirely and the banned first hops out
// of spur. It charges one budget unit per settled node against the
// shared pool and polls done every limitCheckEvery expansions.
func (e *Engine) spurSearch(spur, t uint32, banned []devKid, st *Stats, budget int, done <-chan struct{}) (uint32, bool, traverse.Outcome) {
	st.Searches++
	e.nm.Reset()
	e.pq.Reset()
	e.nm.Set(spur, 0, graph.NoNode)
	e.pq.Push(spur, 0)
	weighted := e.g.Weighted()
	steps := 0
	for !e.pq.Empty() {
		v, dv := e.pq.Pop()
		if dv > e.nm.Dist(v) {
			continue
		}
		st.Expanded++
		steps++
		if budget > 0 && steps > budget {
			return 0, false, traverse.OutcomeBudget
		}
		if done != nil && steps%limitCheckEvery == 0 {
			select {
			case <-done:
				return 0, false, traverse.OutcomeStopped
			default:
			}
		}
		if v == t {
			return dv, true, traverse.OutcomeDone
		}
		nbrs := e.g.Neighbors(v)
		var wts []uint32
		if weighted {
			wts = e.g.NeighborWeights(v)
		}
		for j, w := range nbrs {
			if e.mark[w] == e.markEpoch {
				continue // on the root prefix: would close a loop
			}
			if v == spur && bannedNext(banned, w) {
				continue // deviation edge already used by an accepted path
			}
			wt := uint32(1)
			if weighted {
				wt = wts[j]
			}
			nd := traverse.SatAdd(dv, wt)
			if nd == NoDist {
				continue
			}
			if !e.nm.Has(w) || nd < e.nm.Dist(w) {
				e.nm.Set(w, nd, v)
				e.pq.Push(w, nd)
			}
		}
	}
	return 0, false, traverse.OutcomeDone
}

// bannedNext reports whether next-hop w is a banned deviation edge.
// The set is tiny (one entry per accepted path sharing the prefix), so
// a linear scan beats any map.
func bannedNext(banned []devKid, w uint32) bool {
	for _, kid := range banned {
		if kid.next == w {
			return true
		}
	}
	return false
}

// appendSpurPath appends the spur→t path recorded in the node map by
// the last spurSearch (walking parents back from t, then reversing the
// appended segment in place).
func (e *Engine) appendSpurPath(dst []uint32, spur, t uint32) []uint32 {
	start := len(dst)
	for v := t; ; v = e.nm.Parent(v) {
		dst = append(dst, v)
		if v == spur {
			break
		}
	}
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// addCandidate registers a new deviation path unless an identical path
// is already pending or accepted, growing the candidate heap by
// doubling when the slot space is exhausted.
func (e *Engine) addCandidate(alt PathAlt, devIdx int) {
	if !e.rememberPath(alt.Path) {
		return
	}
	id := len(e.cands)
	e.cands = append(e.cands, candidate{alt: alt, devIdx: devIdx})
	if e.ch == nil || id >= e.chCap {
		ncap := e.chCap * 2
		if ncap < 64 {
			ncap = 64
		}
		nh := heap.NewMin(ncap)
		if e.ch != nil {
			for i := range e.cands {
				if !e.cands[i].done && i != id && e.ch.Contains(uint32(i)) {
					nh.Push(uint32(i), e.ch.Key(uint32(i)))
				}
			}
		}
		e.ch, e.chCap = nh, ncap
	}
	e.ch.Push(uint32(id), alt.Dist)
}

// rememberPath records a path in the dedup set, reporting whether it
// was new.
func (e *Engine) rememberPath(p []uint32) bool {
	b := e.scratch[:0]
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	e.scratch = b
	if _, dup := e.seen[string(b)]; dup {
		return false
	}
	e.seen[string(b)] = struct{}{}
	return true
}

// sortPaths orders ranked alternatives by (dist, length, lexicographic
// path) — the canonical presentation order every layer above relies on
// for replica-identical answers.
func sortPaths(ps []PathAlt) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if len(a.Path) != len(b.Path) {
			return len(a.Path) < len(b.Path)
		}
		for x := range a.Path {
			if a.Path[x] != b.Path[x] {
				return a.Path[x] < b.Path[x]
			}
		}
		return false
	})
}
