package kpaths_test

import (
	"testing"

	"vicinity/internal/baseline"
	"vicinity/internal/gen"
	"vicinity/internal/graph"
	"vicinity/internal/kpaths"
	"vicinity/internal/traverse"
	"vicinity/internal/xrand"
)

// rootFor runs a plain search to get an exact shortest root path, the
// contract the engine expects from the oracle.
func rootFor(g *graph.Graph, s, t uint32) (kpaths.PathAlt, bool) {
	ps := baseline.KShortestYen(g, s, t, 1)
	if len(ps) == 0 {
		return kpaths.PathAlt{}, false
	}
	return kpaths.PathAlt{Dist: ps[0].Dist, Path: ps[0].Path}, true
}

// checkRanked asserts the engine invariants on one answer: sorted
// canonically, loopless, deduplicated, every path a real s→t walk
// whose edge weights sum to its Dist.
func checkRanked(t *testing.T, g *graph.Graph, s, tt uint32, ps []kpaths.PathAlt) {
	t.Helper()
	seen := map[string]bool{}
	for i, p := range ps {
		if len(p.Path) == 0 || p.Path[0] != s || p.Path[len(p.Path)-1] != tt {
			t.Fatalf("path %d: endpoints wrong: %v", i, p.Path)
		}
		on := map[uint32]bool{}
		var dist uint32
		for j, v := range p.Path {
			if on[v] {
				t.Fatalf("path %d revisits node %d: %v", i, v, p.Path)
			}
			on[v] = true
			if j > 0 {
				w, ok := g.EdgeWeight(p.Path[j-1], v)
				if !ok {
					t.Fatalf("path %d uses non-edge %d-%d", i, p.Path[j-1], v)
				}
				dist = traverse.SatAdd(dist, w)
			}
		}
		if dist != p.Dist {
			t.Fatalf("path %d claims dist %d, edges sum to %d: %v", i, p.Dist, dist, p.Path)
		}
		key := ""
		for _, v := range p.Path {
			key += string(rune(v)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate path %d: %v", i, p.Path)
		}
		seen[key] = true
		if i > 0 {
			a, b := ps[i-1], p
			if a.Dist > b.Dist || (a.Dist == b.Dist && len(a.Path) > len(b.Path)) {
				t.Fatalf("paths %d,%d out of order: %v %v", i-1, i, a, b)
			}
		}
	}
}

// TestEnumerateMatchesExhaustive checks the engine against full DFS
// enumeration of every simple path on random tiny graphs, unweighted
// and weighted: the dist multiset must agree exactly for every k.
func TestEnumerateMatchesExhaustive(t *testing.T) {
	r := xrand.New(42)
	for trial := 0; trial < 200; trial++ {
		n := 4 + r.Intn(9) // 4..12 nodes
		b := graph.NewBuilder(n)
		weighted := trial%3 == 0
		edges := n + r.Intn(2*n)
		for i := 0; i < edges; i++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if weighted {
				b.AddWeightedEdge(u, v, 1+uint32(r.Intn(9)))
			} else {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		eng := kpaths.NewEngine(g)
		for pair := 0; pair < 6; pair++ {
			s, tt := uint32(r.Intn(n)), uint32(r.Intn(n))
			k := 1 + r.Intn(7)
			want := baseline.KShortestExhaustive(g, s, tt, k)
			root, ok := rootFor(g, s, tt)
			if !ok {
				if len(want) != 0 {
					t.Fatalf("trial %d: root missing but %d paths exist", trial, len(want))
				}
				got, _, out := eng.Enumerate(kpaths.PathAlt{}, k, traverse.Limits{})
				if len(got) != 0 || out != traverse.OutcomeDone {
					t.Fatalf("trial %d: empty root gave %v/%v", trial, got, out)
				}
				continue
			}
			got, _, out := eng.Enumerate(root, k, traverse.Limits{})
			if out != traverse.OutcomeDone {
				t.Fatalf("trial %d: unlimited enumeration outcome %v", trial, out)
			}
			checkRanked(t, g, s, tt, got)
			if len(got) != len(want) {
				t.Fatalf("trial %d (%d,%d,k=%d): got %d paths, want %d\n got: %v\nwant: %v",
					trial, s, tt, k, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("trial %d (%d,%d,k=%d): dist[%d]=%d, want %d",
						trial, s, tt, k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

// TestEnumerateMatchesReferenceYen cross-checks the engine against the
// independent textbook Yen on mid-size generator graphs.
func TestEnumerateMatchesReferenceYen(t *testing.T) {
	r := xrand.New(7)
	graphs := []*graph.Graph{
		gen.HolmeKim(xrand.New(3), 120, 3, 0.4),
		gen.Grid(8, 11),
	}
	for gi, g := range graphs {
		eng := kpaths.NewEngine(g)
		n := uint32(g.NumNodes())
		for trial := 0; trial < 40; trial++ {
			s, tt := r.Uint32n(n), r.Uint32n(n)
			k := 2 + r.Intn(7)
			want := baseline.KShortestYen(g, s, tt, k)
			root, ok := rootFor(g, s, tt)
			if !ok {
				continue
			}
			got, _, _ := eng.Enumerate(root, k, traverse.Limits{})
			checkRanked(t, g, s, tt, got)
			if len(got) != len(want) {
				t.Fatalf("graph %d (%d,%d,k=%d): got %d paths, want %d", gi, s, tt, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("graph %d (%d,%d,k=%d): dist[%d]=%d, want %d",
						gi, s, tt, k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

// TestEnumerateBudget pins the partial-result contract: a tiny node
// budget stops enumeration with OutcomeBudget and the paths found so
// far (always at least the root), and a zero budget means unlimited.
func TestEnumerateBudget(t *testing.T) {
	g := gen.Grid(6, 30)
	eng := kpaths.NewEngine(g)
	root, ok := rootFor(g, 0, uint32(g.NumNodes()-1))
	if !ok {
		t.Fatal("grid corners disconnected")
	}
	got, st, out := eng.Enumerate(root, 8, traverse.Limits{NodeBudget: 10})
	if out != traverse.OutcomeBudget {
		t.Fatalf("outcome %v, want budget", out)
	}
	if len(got) < 1 || got[0].Dist != root.Dist {
		t.Fatalf("budget run lost the root: %v", got)
	}
	if int(st.Expanded) > 10+1 {
		t.Fatalf("expanded %d beyond budget 10", st.Expanded)
	}
	full, _, out := eng.Enumerate(root, 8, traverse.Limits{})
	if out != traverse.OutcomeDone || len(full) != 8 {
		t.Fatalf("unlimited rerun: %d paths, outcome %v", len(full), out)
	}
}

// TestEnumerateStopped pins cancellation: a closed Done channel stops
// enumeration with OutcomeStopped once the poll interval passes.
func TestEnumerateStopped(t *testing.T) {
	g := gen.Grid(20, 25)
	eng := kpaths.NewEngine(g)
	root, ok := rootFor(g, 0, uint32(g.NumNodes()-1))
	if !ok {
		t.Fatal("grid corners disconnected")
	}
	done := make(chan struct{})
	close(done)
	got, _, out := eng.Enumerate(root, 16, traverse.Limits{Done: done})
	if out != traverse.OutcomeStopped {
		t.Fatalf("outcome %v, want stopped", out)
	}
	if len(got) < 1 {
		t.Fatal("stopped run lost the root")
	}
}

// TestEnumerateDegenerate covers the short-circuits: empty root,
// single-node root (s==t), k<=1, and engine reuse across runs.
func TestEnumerateDegenerate(t *testing.T) {
	g := gen.Grid(3, 3)
	eng := kpaths.NewEngine(g)
	if ps, _, _ := eng.Enumerate(kpaths.PathAlt{}, 5, traverse.Limits{}); ps != nil {
		t.Fatalf("empty root: %v", ps)
	}
	self := kpaths.PathAlt{Dist: 0, Path: []uint32{4}}
	if ps, _, _ := eng.Enumerate(self, 5, traverse.Limits{}); len(ps) != 1 || ps[0].Dist != 0 {
		t.Fatalf("s==t: %v", ps)
	}
	root, _ := rootFor(g, 0, 8)
	if ps, _, _ := eng.Enumerate(root, 1, traverse.Limits{}); len(ps) != 1 {
		t.Fatalf("k=1: %v", ps)
	}
	// Reuse: a second full run on the same engine must be identical.
	a, _, _ := eng.Enumerate(root, 6, traverse.Limits{})
	b, _, _ := eng.Enumerate(root, 6, traverse.Limits{})
	if len(a) != len(b) {
		t.Fatalf("engine reuse changed answers: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Fatalf("engine reuse changed dists at %d", i)
		}
	}
	if eng.Graph() != g {
		t.Fatal("Graph() accessor")
	}
}
