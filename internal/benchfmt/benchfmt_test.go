package benchfmt

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"vicinity/internal/lhist"
)

func sample() *Report {
	var h lhist.Hist
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	return &Report{
		Schema: Schema,
		Tool:   "spload",
		Host:   "tcp://127.0.0.1:7421",
		Config: map[string]string{"qps": "2000"},
		Workloads: []Workload{{
			Name:        "single",
			Kind:        "single",
			DurationSec: 5,
			OfferedQPS:  2000,
			Requests:    10000,
			Queries:     10000,
			AchievedQPS: 2000,
			GoodputQPS:  1999,
			Errors:      map[string]int64{"out_of_range": 5},
			Latency:     FromSnapshot(h.Snapshot()),
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Workloads[0].Latency != r.Workloads[0].Latency {
		t.Fatalf("latency changed: %+v vs %+v", back.Workloads[0].Latency, r.Workloads[0].Latency)
	}
	// Pin the schema's field names: a rename would silently strand every
	// committed BENCH_*.json and external reader.
	for _, key := range []string{`"schema"`, `"vicinity-bench/v1"`, `"workloads"`,
		`"duration_sec"`, `"offered_qps"`, `"achieved_qps"`, `"goodput_qps"`,
		`"p50_us"`, `"p95_us"`, `"p99_us"`, `"p999_us"`, `"errors"`} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("serialized report missing %s:\n%s", key, buf.String())
		}
	}
}

func TestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		break_ func(*Report)
	}{
		{"bad schema", func(r *Report) { r.Schema = "v0" }},
		{"no workloads", func(r *Report) { r.Workloads = nil }},
		{"no duration", func(r *Report) { r.Workloads[0].DurationSec = 0 }},
		{"queries below requests", func(r *Report) { r.Workloads[0].Queries = 1 }},
		{"goodput above throughput", func(r *Report) { r.Workloads[0].GoodputQPS = 1e9 }},
		{"non-monotone quantiles", func(r *Report) { r.Workloads[0].Latency.P95US = 1e12 }},
	} {
		r := sample()
		tc.break_(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := sample().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tool != "spload" || len(r.Workloads) != 1 {
		t.Fatalf("read back %+v", r)
	}
}
