package benchfmt

import (
	"path/filepath"
	"testing"
)

// TestCommittedArtifacts validates every BENCH_*.json checked into the
// repository root: the perf trajectory is only useful if each point in
// it stays machine-readable under the schema invariants.
func TestCommittedArtifacts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json artifacts found")
	}
	for _, p := range paths {
		r, err := ReadFile(p)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(p), err)
			continue
		}
		for _, w := range r.Workloads {
			if w.Latency.Count == 0 {
				t.Errorf("%s: workload %q has an empty latency histogram", filepath.Base(p), w.Name)
			}
		}
	}
}
