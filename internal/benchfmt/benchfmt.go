// Package benchfmt defines the "vicinity-bench/v1" JSON schema shared
// by every benchmark emitter in this repository (cmd/spload,
// cmd/spbench -json) and by the committed BENCH_*.json artifacts.
//
// The schema is deliberately flat and additive: one Report per run, one
// Workload per measured traffic shape, a fixed Latency summary in
// microseconds, and free-form string-keyed config/error maps so new
// knobs and error codes never break old readers. Readers must ignore
// unknown fields; writers must never change the meaning of an existing
// one — rename by adding.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vicinity/internal/lhist"
)

// Schema is the format identifier every report carries.
const Schema = "vicinity-bench/v1"

// Report is one benchmark run.
type Report struct {
	// Schema must be the Schema constant.
	Schema string `json:"schema"`
	// Tool names the emitting command ("spload", "spbench").
	Tool string `json:"tool"`
	// Host describes the serving side ("tcp://127.0.0.1:7421",
	// "http://…", or "in-process").
	Host string `json:"host,omitempty"`
	// Config echoes the run's knobs (flag name → value as a string).
	Config map[string]string `json:"config,omitempty"`
	// Workloads carries one entry per measured traffic shape.
	Workloads []Workload `json:"workloads"`
}

// Workload is one measured traffic shape.
type Workload struct {
	// Name labels the workload ("single", "batch-ranking",
	// "overload-shed", …).
	Name string `json:"name"`
	// Kind is the request shape: "single", "batch", "budget",
	// "estimate", or "mixed".
	Kind string `json:"kind"`
	// DurationSec is the measured wall-clock window.
	DurationSec float64 `json:"duration_sec"`
	// OfferedQPS is the open-loop schedule's target arrival rate
	// (queries per second; 0 when the run is closed-loop/unpaced).
	OfferedQPS float64 `json:"offered_qps,omitempty"`
	// Requests is the number of protocol round trips completed.
	Requests int64 `json:"requests"`
	// Queries is the number of (s,t) pairs answered; equals Requests
	// for single-target shapes, Requests×targets for batches.
	Queries int64 `json:"queries"`
	// AchievedQPS is Queries / DurationSec — completed throughput.
	AchievedQPS float64 `json:"achieved_qps"`
	// GoodputQPS counts only queries that returned a usable answer
	// (no error; budget/deadline outcomes carrying an upper bound
	// count as errors here — the caller asked for more than it got).
	GoodputQPS float64 `json:"goodput_qps"`
	// Degraded counts queries answered with the landmark estimate by
	// server-side admission control (shed load).
	Degraded int64 `json:"degraded,omitempty"`
	// Errors tallies failed queries by taxonomy code ("budget_exceeded",
	// "canceled", "out_of_range", …).
	Errors map[string]int64 `json:"errors,omitempty"`
	// Latency summarizes per-request latency. For open-loop runs it is
	// measured from each request's scheduled send time, not its actual
	// send time, so queueing delay behind a saturated server is charged
	// to the server (coordinated-omission-safe).
	Latency Latency `json:"latency"`
}

// Latency is the fixed quantile summary, in microseconds. Quantiles
// come from a log-linear histogram and under-report by at most 6.25%.
type Latency struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// FromSnapshot summarizes a nanosecond-valued histogram snapshot.
func FromSnapshot(s *lhist.Snapshot) Latency {
	const us = 1e3
	return Latency{
		Count:  s.Count(),
		MeanUS: s.Mean() / us,
		P50US:  float64(s.Quantile(0.50)) / us,
		P95US:  float64(s.Quantile(0.95)) / us,
		P99US:  float64(s.Quantile(0.99)) / us,
		P999US: float64(s.Quantile(0.999)) / us,
		MaxUS:  float64(s.Max()) / us,
	}
}

// Validate checks the invariants a well-formed report upholds; the
// test suite runs it over the committed BENCH_*.json artifacts.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", r.Schema, Schema)
	}
	if r.Tool == "" {
		return fmt.Errorf("benchfmt: missing tool")
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("benchfmt: no workloads")
	}
	for i, w := range r.Workloads {
		if w.Name == "" || w.Kind == "" {
			return fmt.Errorf("benchfmt: workload %d missing name/kind", i)
		}
		if w.DurationSec <= 0 {
			return fmt.Errorf("benchfmt: workload %q has no duration", w.Name)
		}
		if w.Queries < w.Requests {
			return fmt.Errorf("benchfmt: workload %q answered %d queries over %d requests", w.Name, w.Queries, w.Requests)
		}
		if w.GoodputQPS > w.AchievedQPS+1e-9 {
			return fmt.Errorf("benchfmt: workload %q goodput %g exceeds throughput %g", w.Name, w.GoodputQPS, w.AchievedQPS)
		}
		l := w.Latency
		if !(l.P50US <= l.P95US && l.P95US <= l.P99US && l.P99US <= l.P999US) {
			return fmt.Errorf("benchfmt: workload %q quantiles not monotone: %+v", w.Name, l)
		}
	}
	return nil
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (stdout when path is "-").
func (r *Report) WriteFile(path string) error {
	if path == "-" {
		return r.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses and validates a report file.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
