// Package syncx provides a sharded free-list pool for expensive,
// long-lived scratch objects — the fallback-search workspaces and
// batch mark arrays of the query engine.
//
// sync.Pool has two properties that hurt exactly this workload. First,
// every Get/Put from concurrent goroutines that miss their per-P
// private slot contends on one shared global list; under a saturating
// query load the fallback path turns the pool itself into a hot spot.
// Second, sync.Pool is emptied by the garbage collector: a pooled
// search workspace holds O(n) per-node arrays whose construction cost
// is exactly what pooling exists to amortize, and a GC-cleared pool
// silently re-pays that cost for every post-GC query.
//
// Pool keeps a small fixed ring of cache-line-padded slots (sized to
// the CPU count at creation). Each borrower starts probing at a slot
// derived from its own stack address — goroutines live on distinct
// stacks, so concurrent borrowers spread across the ring without any
// shared counter — and falls back to an overflow sync.Pool only when
// its probe window is exhausted. The ring holds objects across GCs
// (bounded by the slot count, so the retained footprint is
// proportional to the hardware's achievable concurrency); only the
// unbounded overflow stays GC-clearable.
package syncx

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// cacheLine is the assumed false-sharing granularity. 64 bytes covers
// x86-64 and most arm64 cores; on 128-byte-line hardware two slots
// share a line, which costs a little contention but stays correct.
const cacheLine = 64

// probeWindow is how many slots a Get/Put examines before using the
// overflow pool. Small, so a miss stays cheap; > 1, so colliding
// goroutines still find each other's returned objects.
const probeWindow = 4

// slot is one padded ring entry. The pointer sits alone on its cache
// line so two cores exchanging different slots never false-share.
type slot[T any] struct {
	p atomic.Pointer[T]
	_ [cacheLine - unsafe.Sizeof(atomic.Pointer[T]{})]byte
}

// Pool is a sharded free list of *T. The zero value is not usable; see
// NewPool. A Pool must not be copied after first use.
type Pool[T any] struct {
	newFn    func() *T
	slots    []slot[T]
	mask     uintptr
	overflow sync.Pool
}

// NewPool returns a pool whose Get falls back to newFn when empty. The
// ring is sized to the next power of two ≥ 2×GOMAXPROCS at creation
// (later GOMAXPROCS changes only shift the contention/retention
// trade-off, never correctness).
func NewPool[T any](newFn func() *T) *Pool[T] {
	n := 2 * runtime.GOMAXPROCS(0)
	size := 1
	for size < n {
		size <<= 1
	}
	return &Pool[T]{
		newFn: newFn,
		slots: make([]slot[T], size),
		mask:  uintptr(size - 1),
	}
}

// home derives this goroutine's preferred starting slot from the
// address of a caller-provided stack variable. Goroutine stacks are
// distinct allocations at least a few KiB apart, so dropping the low
// bits yields a cheap, stable-per-goroutine, well-spread hash without
// any shared state. The uintptr is used only as an integer, never
// converted back to a pointer.
func (p *Pool[T]) home(marker *byte) uintptr {
	h := uintptr(unsafe.Pointer(marker)) >> 10
	// Fibonacci multiplier spreads consecutive stack bases across the
	// ring even though they share high bits.
	return (h * 0x9E3779B9) & p.mask
}

// Get borrows an object, constructing a fresh one only when the ring
// and the overflow pool are both empty.
func (p *Pool[T]) Get() *T {
	var marker byte
	i := p.home(&marker)
	for k := uintptr(0); k < probeWindow; k++ {
		s := &p.slots[(i+k)&p.mask]
		// Load first: Swap unconditionally dirties the cache line, and
		// most probed slots are empty misses.
		if s.p.Load() != nil {
			if v := s.p.Swap(nil); v != nil {
				return v
			}
		}
	}
	if v, ok := p.overflow.Get().(*T); ok {
		return v
	}
	return p.newFn()
}

// Put returns an object to the pool. v must not be used afterwards.
func (p *Pool[T]) Put(v *T) {
	var marker byte
	i := p.home(&marker)
	for k := uintptr(0); k < probeWindow; k++ {
		s := &p.slots[(i+k)&p.mask]
		if s.p.Load() == nil && s.p.CompareAndSwap(nil, v) {
			return
		}
	}
	p.overflow.Put(v)
}
