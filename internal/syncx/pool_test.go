package syncx

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolReuse(t *testing.T) {
	built := 0
	p := NewPool(func() *int { built++; v := new(int); *v = built; return v })
	a := p.Get()
	if *a != 1 {
		t.Fatalf("first Get built %d", *a)
	}
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("Put object not reused by next Get")
	}
	if built != 1 {
		t.Fatalf("built %d objects, want 1", built)
	}
}

func TestPoolSurvivesGC(t *testing.T) {
	// The whole point of the ring: unlike sync.Pool, a parked object
	// survives garbage collection.
	p := NewPool(func() *[256]byte { return new([256]byte) })
	v := p.Get()
	p.Put(v)
	runtime.GC()
	runtime.GC()
	if got := p.Get(); got != v {
		t.Fatal("ring slot was cleared by GC")
	}
}

func TestPoolOverflow(t *testing.T) {
	// Returning far more objects than the ring holds must not lose or
	// duplicate any: everything parks in the ring or the overflow pool.
	p := NewPool(func() *int { return new(int) })
	const n = 512
	objs := make([]*int, n)
	for i := range objs {
		objs[i] = p.Get()
	}
	seen := map[*int]bool{}
	for _, o := range objs {
		if seen[o] {
			t.Fatal("Get returned one object twice while outstanding")
		}
		seen[o] = true
		p.Put(o)
	}
}

func TestPoolConcurrent(t *testing.T) {
	// Hammer Get/Put from many goroutines; under -race this doubles as
	// the memory-model check. No object may be handed to two borrowers.
	p := NewPool(func() *atomic.Int32 { return new(atomic.Int32) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := p.Get()
				if !v.CompareAndSwap(0, 1) {
					t.Error("object borrowed by two goroutines at once")
					return
				}
				v.Store(0)
				p.Put(v)
			}
		}()
	}
	wg.Wait()
}

// The benchmarks gate the sync.Pool replacement. The honest comparison:
// an uncontended sync.Pool Get/Put hits the per-P private slot with no
// atomic ops at all, so the ring's Swap+CAS pair loses ~15ns/op raw on
// a single core. That delta is three orders of magnitude below the
// µs-scale fallback searches the pooled workspaces serve. What the ring
// buys — and what these tests actually gate — is (a) no GC-clearing of
// O(n) workspaces (TestPoolSurvivesGC) and (b) no shared global list to
// contend on under parallel borrow/return (the Parallel pair below,
// which only separates from sync.Pool on multicore hardware).

type ws struct{ buf [4096]byte }

func BenchmarkSyncPoolParallel(b *testing.B) {
	p := sync.Pool{New: func() any { return new(ws) }}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v := p.Get().(*ws)
			v.buf[0]++
			p.Put(v)
		}
	})
}

func BenchmarkShardedPoolParallel(b *testing.B) {
	p := NewPool(func() *ws { return new(ws) })
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v := p.Get()
			v.buf[0]++
			p.Put(v)
		}
	})
}

func BenchmarkSyncPoolGetPut(b *testing.B) {
	p := sync.Pool{New: func() any { return new(ws) }}
	for i := 0; i < b.N; i++ {
		v := p.Get().(*ws)
		v.buf[0]++
		p.Put(v)
	}
}

func BenchmarkShardedPoolGetPut(b *testing.B) {
	p := NewPool(func() *ws { return new(ws) })
	for i := 0; i < b.N; i++ {
		v := p.Get()
		v.buf[0]++
		p.Put(v)
	}
}
