// Package oraclefile implements the binary container format for
// persisted oracles: a magic header, a sequence of tagged sections,
// and a CRC-32C trailer covering every byte before it.
//
// The container is deliberately dumb — it knows nothing about oracles.
// Each section is
//
//	tag    uint32 (LE)
//	count  uint64 (LE)  number of elements
//	data   count elements, little-endian (u16/u32/u64 arrays, or raw bytes)
//
// and the writer/reader pair in internal/core lays oracle fields out as
// an agreed sequence of sections in strictly increasing tag order.
// Readers demand sections in order by tag: a tag below the wanted one
// means the wanted section is missing or the file is reordered, and
// fails fast with ErrSection instead of misparsing. A tag above the
// wanted one is a section this reader does not know about — written by
// a newer format revision — and is skipped, so old readers survive new
// trailing or interleaved sections (forward compatibility). Because
// the skip has only the header to go by, every section added after
// format v1 MUST store a byte count in the header (Raw-style), not an
// element count. Array data moves through fixed-size chunk buffers
// (near-memcpy speed, allocation proportional to data actually
// present, so a corrupt count on a truncated file cannot force a huge
// allocation).
//
// Integrity, not authentication: the trailing checksum reliably
// detects truncation and accidental corruption, which is the threat
// model for locally produced files. A deliberately crafted file with a
// matching checksum can still encode inconsistent structures; loaders
// validate structural invariants (offset monotonicity, range bounds)
// before trusting anything that could index out of bounds.
package oraclefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Magic identifies an oracle container file.
var Magic = [4]byte{'V', 'C', 'O', '1'}

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("oraclefile: bad magic (not an oracle file)")
	ErrVersion   = errors.New("oraclefile: unsupported format version")
	ErrChecksum  = errors.New("oraclefile: checksum mismatch (corrupt or truncated file)")
	ErrSection   = errors.New("oraclefile: unexpected section")
	ErrTruncated = errors.New("oraclefile: truncated file")
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const chunkElems = 8192

// endTag terminates the section sequence; the CRC-32C trailer follows.
const endTag = 0

// Writer emits an oracle container. Errors are sticky: the first write
// failure is remembered and returned by Close.
type Writer struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
	buf []byte
}

// NewWriter starts a container on w with the given format version.
func NewWriter(w io.Writer, version uint16) *Writer {
	ow := &Writer{
		w:   bufio.NewWriterSize(w, 1<<20),
		crc: crc32.New(castagnoli),
		buf: make([]byte, 8*chunkElems),
	}
	ow.write(Magic[:])
	ow.buf = binary.LittleEndian.AppendUint16(ow.buf[:0], version)
	ow.write(ow.buf[:2])
	ow.buf = ow.buf[:cap(ow.buf)]
	return ow
}

// write sends b to both the output and the checksum.
func (ow *Writer) write(b []byte) {
	if ow.err != nil {
		return
	}
	if _, err := ow.w.Write(b); err != nil {
		ow.err = err
		return
	}
	ow.crc.Write(b)
}

func (ow *Writer) header(tag uint32, count uint64) {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], tag)
	binary.LittleEndian.PutUint64(hdr[4:], count)
	ow.write(hdr[:])
}

// U16s writes a uint16-array section.
func (ow *Writer) U16s(tag uint32, xs []uint16) {
	ow.header(tag, uint64(len(xs)))
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint16(ow.buf[2*i:], v)
		}
		ow.write(ow.buf[:2*n])
		xs = xs[n:]
	}
}

// U32s writes a uint32-array section.
func (ow *Writer) U32s(tag uint32, xs []uint32) {
	ow.header(tag, uint64(len(xs)))
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint32(ow.buf[4*i:], v)
		}
		ow.write(ow.buf[:4*n])
		xs = xs[n:]
	}
}

// U64s writes a uint64-array section.
func (ow *Writer) U64s(tag uint32, xs []uint64) {
	ow.header(tag, uint64(len(xs)))
	for len(xs) > 0 {
		n := min(len(xs), chunkElems)
		for i, v := range xs[:n] {
			binary.LittleEndian.PutUint64(ow.buf[8*i:], v)
		}
		ow.write(ow.buf[:8*n])
		xs = xs[n:]
	}
}

// Raw writes an opaque byte section (e.g. an embedded sub-format).
func (ow *Writer) Raw(tag uint32, b []byte) {
	ow.header(tag, uint64(len(b)))
	ow.write(b)
}

// U32Rows writes a uint32-array section assembled from several rows.
// The encoding is byte-identical to one U32s call on the rows'
// concatenation, without materializing it (callers keep large tables
// as per-row slices).
func (ow *Writer) U32Rows(tag uint32, rows [][]uint32) {
	writeRows(ow, tag, rows, 4, binary.LittleEndian.PutUint32)
}

// U16Rows is U32Rows for uint16 rows.
func (ow *Writer) U16Rows(tag uint32, rows [][]uint16) {
	writeRows(ow, tag, rows, 2, binary.LittleEndian.PutUint16)
}

// writeRows streams rows through the chunk buffer as one section of
// their concatenation.
func writeRows[T uint16 | uint32](ow *Writer, tag uint32, rows [][]T, elemSize int, put func([]byte, T)) {
	var total uint64
	for _, r := range rows {
		total += uint64(len(r))
	}
	ow.header(tag, total)
	fill := 0 // elements staged in buf
	for _, row := range rows {
		for len(row) > 0 {
			n := min(len(row), chunkElems-fill)
			for i, v := range row[:n] {
				put(ow.buf[elemSize*(fill+i):], v)
			}
			fill += n
			row = row[n:]
			if fill == chunkElems {
				ow.write(ow.buf[:elemSize*fill])
				fill = 0
			}
		}
	}
	if fill > 0 {
		ow.write(ow.buf[:elemSize*fill])
	}
}

// Close writes the end marker and checksum trailer and flushes.
// It does not close the underlying writer.
func (ow *Writer) Close() error {
	ow.header(endTag, 0)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], ow.crc.Sum32())
	if ow.err == nil {
		if _, err := ow.w.Write(sum[:]); err != nil {
			ow.err = err
		}
	}
	if ow.err != nil {
		return ow.err
	}
	return ow.w.Flush()
}

// Reader consumes an oracle container.
type Reader struct {
	r       *bufio.Reader
	crc     hash.Hash32
	version uint16
	rem     int64 // bytes remaining per the size hint; -1 = unknown
	buf     []byte
}

// NewReader checks the magic and returns a reader positioned at the
// first section. sizeHint is the total byte size of the container when
// known (a file size), or negative for unbounded streams. With a hint,
// array sections allocate their exact size up front — single
// allocation, no growth copies — because a count beyond the remaining
// bytes is rejected before any allocation; without one, sections grow
// chunk by chunk as data actually arrives.
func NewReader(r io.Reader, sizeHint int64) (*Reader, error) {
	or := &Reader{
		r:   bufio.NewReaderSize(r, 1<<20),
		crc: crc32.New(castagnoli),
		rem: sizeHint,
		buf: make([]byte, 8*chunkElems),
	}
	var head [6]byte
	if err := or.read(head[:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	if [4]byte(head[:4]) != Magic {
		return nil, ErrBadMagic
	}
	or.version = binary.LittleEndian.Uint16(head[4:])
	return or, nil
}

// Version returns the format version from the header.
func (or *Reader) Version() uint16 { return or.version }

// read fills b fully, feeding the checksum.
func (or *Reader) read(b []byte) error {
	if _, err := io.ReadFull(or.r, b); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return fmt.Errorf("%w: %w", ErrTruncated, err)
		}
		return err
	}
	or.crc.Write(b)
	if or.rem >= 0 {
		or.rem -= int64(len(b))
	}
	return nil
}

// sized reports whether a section of count elems of elemSize bytes can
// be allocated in full: true when the size hint proves the bytes are
// present. err is non-nil when the hint proves they are NOT present.
func (or *Reader) sized(count uint64, elemSize int) (bool, error) {
	if or.rem < 0 {
		return false, nil
	}
	if count > uint64(or.rem)/uint64(elemSize) {
		return false, fmt.Errorf("%w: section claims %d elements beyond file size", ErrTruncated, count)
	}
	return true, nil
}

// header reads section headers until it finds the wanted tag.
//
// Sections appear in strictly increasing tag order, so a greater tag
// is one this reader does not know about (a newer format revision
// appended it): its payload is skipped — by convention every section
// added after v1 stores a byte count in the header, exactly like Raw —
// with the skipped bytes still feeding the checksum. A smaller tag
// means the wanted section is missing or the file is reordered: fail
// fast with ErrSection.
func (or *Reader) header(tag uint32) (count uint64, err error) {
	for {
		var hdr [12]byte
		if err := or.read(hdr[:]); err != nil {
			return 0, err
		}
		got := binary.LittleEndian.Uint32(hdr[0:])
		n := binary.LittleEndian.Uint64(hdr[4:])
		if got == tag {
			return n, nil
		}
		if got < tag || got == endTag {
			return 0, fmt.Errorf("%w: got tag %d, want %d", ErrSection, got, tag)
		}
		if err := or.skip(n); err != nil {
			return 0, err
		}
	}
}

// skip consumes n payload bytes of an unknown section, feeding the
// checksum. The size hint bounds the claim before any reads, so a
// corrupt length on a truncated file fails fast instead of spinning.
func (or *Reader) skip(n uint64) error {
	if _, err := or.sized(n, 1); err != nil {
		return err
	}
	for n > 0 {
		c := int(min(n, uint64(len(or.buf))))
		if err := or.read(or.buf[:c]); err != nil {
			return err
		}
		n -= uint64(c)
	}
	return nil
}

// U16s reads the uint16-array section with the given tag.
func (or *Reader) U16s(tag uint32) ([]uint16, error) {
	count, err := or.header(tag)
	if err != nil {
		return nil, err
	}
	exact, err := or.sized(count, 2)
	if err != nil {
		return nil, err
	}
	var xs []uint16
	if exact {
		xs = make([]uint16, 0, count)
	} else {
		xs = make([]uint16, 0, min(count, chunkElems))
	}
	for count > 0 {
		n := int(min(count, chunkElems))
		if err := or.read(or.buf[:2*n]); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			xs = append(xs, binary.LittleEndian.Uint16(or.buf[2*i:]))
		}
		count -= uint64(n)
	}
	return xs, nil
}

// U32s reads the uint32-array section with the given tag.
func (or *Reader) U32s(tag uint32) ([]uint32, error) {
	count, err := or.header(tag)
	if err != nil {
		return nil, err
	}
	exact, err := or.sized(count, 4)
	if err != nil {
		return nil, err
	}
	var xs []uint32
	if exact {
		xs = make([]uint32, 0, count)
	} else {
		xs = make([]uint32, 0, min(count, chunkElems))
	}
	for count > 0 {
		n := int(min(count, chunkElems))
		if err := or.read(or.buf[:4*n]); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			xs = append(xs, binary.LittleEndian.Uint32(or.buf[4*i:]))
		}
		count -= uint64(n)
	}
	return xs, nil
}

// U64s reads the uint64-array section with the given tag.
func (or *Reader) U64s(tag uint32) ([]uint64, error) {
	count, err := or.header(tag)
	if err != nil {
		return nil, err
	}
	exact, err := or.sized(count, 8)
	if err != nil {
		return nil, err
	}
	var xs []uint64
	if exact {
		xs = make([]uint64, 0, count)
	} else {
		xs = make([]uint64, 0, min(count, chunkElems))
	}
	for count > 0 {
		n := int(min(count, chunkElems))
		if err := or.read(or.buf[:8*n]); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			xs = append(xs, binary.LittleEndian.Uint64(or.buf[8*i:]))
		}
		count -= uint64(n)
	}
	return xs, nil
}

// Raw reads the opaque byte section with the given tag.
func (or *Reader) Raw(tag uint32) ([]byte, error) {
	count, err := or.header(tag)
	if err != nil {
		return nil, err
	}
	exact, err := or.sized(count, 1)
	if err != nil {
		return nil, err
	}
	var b []byte
	if exact {
		b = make([]byte, 0, count)
	} else {
		b = make([]byte, 0, min(count, 8*chunkElems))
	}
	for count > 0 {
		n := int(min(count, 8*chunkElems))
		if err := or.read(or.buf[:n]); err != nil {
			return nil, err
		}
		b = append(b, or.buf[:n]...)
		count -= uint64(n)
	}
	return b, nil
}

// Close reads the end marker and verifies the checksum trailer.
func (or *Reader) Close() error {
	if _, err := or.header(endTag); err != nil {
		return err
	}
	want := or.crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(or.r, sum[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != want {
		return ErrChecksum
	}
	return nil
}
