package oraclefile

import (
	"bytes"
	"testing"
)

// fuzzSchedule is the section sequence the fuzz reader demands; it
// exercises every array width plus a raw section, mirroring how the
// core loader walks a file.
func readSchedule(data []byte, sizeHint int64) error {
	or, err := NewReader(bytes.NewReader(data), sizeHint)
	if err != nil {
		return err
	}
	if _, err := or.U64s(1); err != nil {
		return err
	}
	if _, err := or.U32s(2); err != nil {
		return err
	}
	if _, err := or.Raw(3); err != nil {
		return err
	}
	if _, err := or.U16s(4); err != nil {
		return err
	}
	if _, err := or.U32s(5); err != nil {
		return err
	}
	return or.Close()
}

// validContainer builds a well-formed container matching readSchedule.
func validContainer() []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.U64s(1, []uint64{1, 2, 3})
	w.U32s(2, []uint32{4, 5})
	w.Raw(3, []byte("raw-bytes"))
	w.U16s(4, []uint16{6})
	w.U32Rows(5, [][]uint32{{7}, {8, 9}})
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds mutated containers to the section reader, both with
// a size hint (the file path) and without (the stream path). Any error
// is acceptable; panics, hangs and unbounded allocations are not —
// in particular a section header claiming a huge element count must be
// rejected (hinted) or bounded by the data actually present (streamed).
func FuzzReader(f *testing.F) {
	valid := validContainer()
	f.Add(valid, true)
	f.Add(valid, false)
	f.Add(valid[:len(valid)-5], true) // truncated trailer
	f.Add(valid[:8], false)           // truncated header
	f.Add([]byte("VCO1"), true)       // magic only
	f.Add([]byte{}, false)            // empty
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped, true)
	// A header whose count field claims ~2^56 elements.
	huge := append([]byte(nil), valid[:6]...)
	huge = append(huge, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0)
	f.Add(huge, true)
	f.Add(huge, false)
	// A container with unknown (future) sections interleaved between the
	// scheduled tags: the reader must skip them and still verify the CRC.
	var fwd bytes.Buffer
	fw := NewWriter(&fwd, 1)
	fw.U64s(1, []uint64{1, 2, 3})
	fw.Raw(100, []byte("future section"))
	fw.U32s(2, []uint32{4, 5})
	fw.Raw(3, []byte("raw-bytes"))
	fw.U16s(4, []uint16{6})
	fw.U32s(5, []uint32{7, 8, 9})
	fw.Raw(200, []byte("trailing future section"))
	if err := fw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(fwd.Bytes(), true)
	f.Add(fwd.Bytes(), false)

	f.Fuzz(func(t *testing.T, data []byte, sized bool) {
		hint := int64(-1)
		if sized {
			hint = int64(len(data))
		}
		err := readSchedule(data, hint)
		if err == nil && !bytes.Equal(data, valid) {
			// Acceptance of non-seed input is fine (e.g. checksum happens
			// to match a benign mutation of section *contents*), as long
			// as nothing panicked. Nothing to assert.
			_ = err
		}
	})
}

// FuzzRoundTrip writes fuzz-chosen arrays through the writer and
// requires the reader to return them unchanged.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(1))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, version uint16) {
		u32s := make([]uint32, len(raw)/2)
		for i := range u32s {
			u32s[i] = uint32(raw[2*i]) | uint32(raw[2*i+1])<<8
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, version)
		w.U32s(7, u32s)
		w.Raw(8, raw)
		if err := w.Close(); err != nil {
			t.Fatalf("writer: %v", err)
		}
		or, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		if or.Version() != version {
			t.Fatalf("version %d, want %d", or.Version(), version)
		}
		gotU32s, err := or.U32s(7)
		if err != nil {
			t.Fatalf("U32s: %v", err)
		}
		gotRaw, err := or.Raw(8)
		if err != nil {
			t.Fatalf("Raw: %v", err)
		}
		if err := or.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if len(gotU32s) != len(u32s) {
			t.Fatalf("u32 count %d, want %d", len(gotU32s), len(u32s))
		}
		for i := range u32s {
			if gotU32s[i] != u32s[i] {
				t.Fatalf("u32[%d] = %d, want %d", i, gotU32s[i], u32s[i])
			}
		}
		if !bytes.Equal(gotRaw, raw) {
			t.Fatal("raw section mismatch")
		}
	})
}
