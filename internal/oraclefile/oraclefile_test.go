package oraclefile

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 3)
	u64s := []uint64{1, 2, 1 << 60}
	u32s := make([]uint32, 20000) // spans multiple chunks
	for i := range u32s {
		u32s[i] = uint32(i * 7)
	}
	u16s := []uint16{9, 8, 7}
	raw := []byte("embedded blob")
	w.U64s(1, u64s)
	w.U32s(2, u32s)
	w.U16s(3, u16s)
	w.Raw(4, raw)
	w.U32s(5, nil)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 3 {
		t.Fatalf("version = %d", r.Version())
	}
	got64, err := r.U64s(1)
	if err != nil || !reflect.DeepEqual(got64, u64s) {
		t.Fatalf("U64s: %v %v", got64, err)
	}
	got32, err := r.U32s(2)
	if err != nil || !reflect.DeepEqual(got32, u32s) {
		t.Fatalf("U32s mismatch: %v", err)
	}
	got16, err := r.U16s(3)
	if err != nil || !reflect.DeepEqual(got16, u16s) {
		t.Fatalf("U16s: %v %v", got16, err)
	}
	gotRaw, err := r.Raw(4)
	if err != nil || !bytes.Equal(gotRaw, raw) {
		t.Fatalf("Raw: %q %v", gotRaw, err)
	}
	empty, err := r.U32s(5)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty section: %v %v", empty, err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reader Close: %v", err)
	}
}

func TestSectionOrderEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.U32s(1, []uint32{1})
	w.U32s(2, []uint32{2})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.U32s(2); !errors.Is(err, ErrSection) {
		t.Fatalf("out-of-order read: %v", err)
	}
}

// TestSkipsUnknownSections: a reader built for today's schedule must
// load a file that interleaves and appends sections with higher,
// unknown tags (written by a newer format revision). Skipped bytes
// still feed the checksum, so corruption inside a skipped section is
// detected at Close.
func TestSkipsUnknownSections(t *testing.T) {
	build := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, 1)
		w.U32s(1, []uint32{10, 20})
		// Unknown sections carry tags above every known one and use
		// byte-count headers (the post-v1 convention), so Raw models
		// them exactly.
		w.Raw(100, []byte("future section between known tags"))
		w.U16s(9, []uint16{33})
		w.Raw(112, bytes.Repeat([]byte{0xAB}, 3*8192+5)) // spans chunk buffers
		w.U64s(40, []uint64{77})
		w.Raw(199, []byte("trailing future section"))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, hint := range []int64{-1, 0} {
		blob := build()
		if hint == 0 {
			hint = int64(len(blob))
		}
		r, err := NewReader(bytes.NewReader(blob), hint)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.U32s(1)
		if err != nil || !reflect.DeepEqual(got, []uint32{10, 20}) {
			t.Fatalf("U32s(1) = %v, %v", got, err)
		}
		got16, err := r.U16s(9)
		if err != nil || !reflect.DeepEqual(got16, []uint16{33}) {
			t.Fatalf("U16s(9) = %v, %v", got16, err)
		}
		got64, err := r.U64s(40)
		if err != nil || !reflect.DeepEqual(got64, []uint64{77}) {
			t.Fatalf("U64s(40) = %v, %v", got64, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close with skipped sections: %v", err)
		}
	}

	// Corruption inside a skipped section must still fail the checksum.
	blob := build()
	blob[len(blob)-10] ^= 0x40 // inside the trailing unknown section
	r, err := NewReader(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.U32s(1); err != nil {
		t.Fatalf("U32s(1): %v", err)
	}
	if _, err := r.U16s(9); err != nil {
		t.Fatalf("U16s(9): %v", err)
	}
	if _, err := r.U64s(40); err != nil {
		t.Fatalf("U64s(40): %v", err)
	}
	if err := r.Close(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt skipped section: %v, want ErrChecksum", err)
	}
}

// TestSkipBoundedBySizeHint: an unknown section claiming more bytes
// than the file holds must be rejected before any reads when the size
// is known, and hit ErrTruncated when streamed.
func TestSkipBoundedBySizeHint(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.Raw(100, []byte("short"))
	w.U32s(60, []uint32{1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Blow up the unknown section's byte count (offset: magic 4 +
	// version 2 + tag 4).
	blob[10+2] = 0xFF
	blob[10+3] = 0xFF
	for _, hint := range []int64{int64(len(blob)), -1} {
		r, err := NewReader(bytes.NewReader(blob), hint)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.U32s(60); !errors.Is(err, ErrTruncated) {
			t.Fatalf("hint %d: huge skip claim: %v, want ErrTruncated", hint, err)
		}
	}
}

func TestChecksumAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.U32s(1, []uint32{10, 20, 30})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Flip each byte in turn; reading through must fail every time.
	for pos := 6; pos < len(blob); pos++ {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0x40
		r, err := NewReader(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			continue
		}
		if _, err := r.U32s(1); err != nil {
			continue
		}
		if err := r.Close(); err == nil {
			t.Fatalf("corruption at %d not detected", pos)
		}
	}
	for cut := 0; cut < len(blob); cut++ {
		r, err := NewReader(bytes.NewReader(blob[:cut]), int64(cut))
		if err != nil {
			continue
		}
		if _, err := r.U32s(1); err != nil {
			continue
		}
		if err := r.Close(); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}
}

// TestCorruptCountCannotForceHugeAlloc: a section claiming 2^40
// elements on a tiny file must fail at EOF without allocating 2^40
// elements first.
func TestCorruptCountCannotForceHugeAlloc(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	w.U32s(1, []uint32{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Section count lives right after magic(4)+version(2)+tag(4).
	blob[10+4] = 0xFF // blow up the low bytes of the count
	blob[10+5] = 0xFF
	blob[10+6] = 0xFF
	r, err := NewReader(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.U32s(1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("huge count: %v", err)
	}
}
