// Package vicinity is an exact point-to-point shortest-path oracle for
// social networks, reproducing "Shortest Paths in Less Than a
// Millisecond" (Agarwal, Caesar, Godfrey, Zhao — WOSN/SIGCOMM 2012).
//
// The oracle precomputes, for every node u, a small "vicinity" Γ(u) —
// all nodes no farther from u than u's nearest landmark, where landmarks
// are sampled with probability growing in node degree — plus full
// distance tables for the landmarks themselves. A query between s and t
// is then a handful of hash-table probes: either one endpoint is a
// landmark, or one lies in the other's vicinity, or the boundary of
// Γ(s) is scanned against Γ(t) and the minimum d(s,w)+d(w,t) over the
// intersection is the exact distance (Theorem 1 of the paper). On
// social-network topologies with α = 4 (vicinity size ≈ 4√n), over 99%
// of random queries resolve from the tables in microseconds; the rest
// fall back to an exact bidirectional search by default.
//
// # Quick start
//
//	g := vicinity.GenerateSocial(10000, 9, 1) // or LoadGraph / NewBuilder
//	oracle, err := vicinity.Build(g, nil)     // nil = paper defaults (α=4)
//	d, method, err := oracle.Distance(12, 97)
//	path, _, err := oracle.Path(12, 97)
//
// # Guarantees
//
// For unweighted graphs every answer whose Method is Exact is the true
// shortest distance; the property is proven in the paper's appendix and
// property-tested in this repository. For weighted graphs (positive
// integer weights), resolved answers are upper bounds that are exact
// whenever some shortest-path vertex lies in both vicinities — see
// DESIGN.md for the honest discussion of the weighted case.
//
// # Dynamic updates
//
// Oracles absorb graph churn without rebuilding: InsertEdge, AddNode,
// DeleteEdge, SetWeight and the batched ApplyUpdates repair only the
// vicinities, boundaries and landmark tables the change can reach,
// following the dynamic scheme of the paper's sequel ("Shortest Paths
// in Microseconds") — growth and deletion alike, so unfollows and
// blocks are as cheap as new ties. Updates are safe to run
// concurrently with queries:
// each mutation builds a new internal snapshot and installs it
// atomically, so in-flight queries keep reading a consistent epoch and
// later queries see the updated graph. An updated oracle answers
// exactly like one freshly built on the mutated graph with the same
// landmark set (property-tested in this repository); see DESIGN.md for
// the repair algorithm and its correctness argument.
//
// Oracles are safe for concurrent use throughout.
package vicinity

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/graph"
	"vicinity/internal/xrand"
)

// NoDist is returned as the distance for unreachable or unresolved
// pairs.
const NoDist = ^uint32(0)

// Graph is an immutable undirected graph with dense uint32 node ids.
type Graph struct {
	g *graph.Graph
}

// Builder accumulates edges for a Graph. Self-loops are dropped and
// duplicate edges merged; node ids must be < n.
type Builder struct {
	b *graph.Builder
}

// NewBuilder returns a Builder for a graph over n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{b: graph.NewBuilder(n)}
}

// AddEdge records the undirected edge {u, v} with weight 1.
func (b *Builder) AddEdge(u, v uint32) { b.b.AddEdge(u, v) }

// AddWeightedEdge records the undirected edge {u, v} with weight w
// (w >= 1 for oracle builds).
func (b *Builder) AddWeightedEdge(u, v, w uint32) { b.b.AddWeightedEdge(u, v, w) }

// Build finalizes the graph.
func (b *Builder) Build() *Graph { return &Graph{g: b.b.Build()} }

// NewGraph builds an unweighted graph over n nodes from an edge list.
func NewGraph(n int, edges [][2]uint32) *Graph {
	return &Graph{g: graph.FromEdges(n, edges)}
}

// LoadGraph reads a graph file, auto-detecting the binary format and
// falling back to the text edge-list format ("u v [w]" lines, '#'
// comments).
func LoadGraph(path string) (*Graph, error) {
	g, err := graph.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveBinary writes the graph to path in the fast binary format.
func (g *Graph) SaveBinary(path string) error { return graph.SaveBinaryFile(path, g.g) }

// SaveEdgeList writes the graph to path as a text edge list.
func (g *Graph) SaveEdgeList(path string) error { return graph.SaveEdgeListFile(path, g.g) }

// GenerateSocial returns a synthetic social network: a Holme–Kim
// powerlaw-cluster graph with n nodes, about k·n edges (average degree
// ≈ 2k) and high clustering. Deterministic in seed; always connected.
func GenerateSocial(n, k int, seed uint64) *Graph {
	return &Graph{g: gen.HolmeKim(xrand.New(seed), n, k, 0.5)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u uint32) int { return g.g.Degree(u) }

// Neighbors returns the sorted adjacency of u (shared slice; do not
// modify).
func (g *Graph) Neighbors(u uint32) []uint32 { return g.g.Neighbors(u) }

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v uint32) bool { return g.g.HasEdge(u, v) }

// AvgDegree returns 2m/n.
func (g *Graph) AvgDegree() float64 { return g.g.AvgDegree() }

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool { return graph.Connected(g.g) }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.g.NumNodes(), g.g.NumEdges())
}

// Method reports how a query was answered; see the constants.
type Method = core.Method

// Query resolution methods (Algorithm 1 cases and fallbacks).
const (
	// MethodNone: unresolved (vicinities disjoint, fallback disabled).
	MethodNone = core.MethodNone
	// MethodSame: s == t.
	MethodSame = core.MethodSame
	// MethodLandmarkSource: s is a landmark (answered from its table).
	MethodLandmarkSource = core.MethodLandmarkSource
	// MethodLandmarkTarget: t is a landmark.
	MethodLandmarkTarget = core.MethodLandmarkTarget
	// MethodVicinitySource: t ∈ Γ(s).
	MethodVicinitySource = core.MethodVicinitySource
	// MethodVicinityTarget: s ∈ Γ(t).
	MethodVicinityTarget = core.MethodVicinityTarget
	// MethodIntersection: resolved by the boundary scan.
	MethodIntersection = core.MethodIntersection
	// MethodFallbackExact: resolved by the exact bidirectional fallback.
	MethodFallbackExact = core.MethodFallbackExact
	// MethodFallbackEstimate: landmark triangulation estimate (inexact).
	MethodFallbackEstimate = core.MethodFallbackEstimate
	// MethodUnreachable: no path exists.
	MethodUnreachable = core.MethodUnreachable
	// MethodBudgetBound: a budgeted or canceled fallback stopped early;
	// the distance is its best-known upper bound (Query only).
	MethodBudgetBound = core.MethodBudgetBound
)

// Fallback selects the behavior for queries the tables cannot resolve.
type Fallback = core.Fallback

// Fallback modes.
const (
	// FallbackExact answers unresolved queries with bidirectional search
	// (default; the paper's footnote 1).
	FallbackExact = core.FallbackExact
	// FallbackEstimate answers with a landmark triangulation upper bound.
	FallbackEstimate = core.FallbackEstimate
	// FallbackNone reports unresolved queries as MethodNone.
	FallbackNone = core.FallbackNone
)

// Options configures Build. The zero value (or a nil pointer) gives the
// paper's defaults: α = 4, √degree landmark sampling, hash-table
// vicinities, landmark tables, path data, and the exact fallback.
type Options struct {
	// Alpha controls the expected vicinity size α·√n (paper: 4).
	Alpha float64
	// Seed makes landmark sampling deterministic.
	Seed uint64
	// Workers bounds build parallelism (0 = GOMAXPROCS). The offline
	// phase shards across this many goroutines; the built oracle — and
	// any file written by Save — is bit-identical for every worker
	// count, so Workers trades build time only, never output.
	Workers int
	// Fallback selects unresolved-query handling.
	Fallback Fallback
	// DistanceOnly drops path data (parent pointers and landmark parent
	// tables); Path queries then use the fallback.
	DistanceOnly bool
	// WithoutLandmarkTables skips the |L|·n landmark distance tables;
	// landmark-endpoint queries then resolve via vicinities or fallback.
	WithoutLandmarkTables bool

	// CompactLandmarkTables halves landmark-table memory (the dominant
	// term) by storing uint16 distances — the paper's §5 memory question.
	// Build fails on graphs with distances above 65534.
	CompactLandmarkTables bool
	// Nodes restricts vicinity construction to these nodes (advanced;
	// used by the evaluation harness to mirror the paper's methodology).
	Nodes []uint32
}

// Oracle is the built shortest-path oracle. It is safe for concurrent
// use: queries may run from any number of goroutines, and dynamic
// updates (ApplyUpdates, InsertEdge, AddNode) may run concurrently with
// them — each update installs a new internal snapshot atomically, so
// every query observes one consistent graph-plus-tables epoch.
type Oracle struct {
	ep atomic.Pointer[oracleEpoch]
	mu sync.Mutex // serializes updates; queries never take it
}

// oracleEpoch pairs one immutable core snapshot with its graph wrapper
// so both swap together.
type oracleEpoch struct {
	o *core.Oracle
	g *Graph
}

// cur returns the current epoch.
func (o *Oracle) cur() *oracleEpoch { return o.ep.Load() }

func newOracle(co *core.Oracle, g *Graph) *Oracle {
	o := &Oracle{}
	o.ep.Store(&oracleEpoch{o: co, g: g})
	return o
}

// Build runs the offline phase over g. A nil opts selects the paper's
// defaults.
func Build(g *Graph, opts *Options) (*Oracle, error) {
	if g == nil {
		return nil, errors.New("vicinity: nil graph")
	}
	var co core.Options
	if opts != nil {
		co = core.Options{
			Alpha:                 opts.Alpha,
			Seed:                  opts.Seed,
			Workers:               opts.Workers,
			Fallback:              opts.Fallback,
			DisablePathData:       opts.DistanceOnly,
			DisableLandmarkTables: opts.WithoutLandmarkTables,
			CompactLandmarkTables: opts.CompactLandmarkTables,
			Nodes:                 opts.Nodes,
		}
	}
	o, err := core.Build(g.g, co)
	if err != nil {
		return nil, fmt.Errorf("vicinity: %w", err)
	}
	return newOracle(o, g), nil
}

// Save writes the oracle's current epoch to path in the versioned,
// checksummed binary oracle format (see DESIGN.md). The file is
// self-contained — it embeds the graph alongside every built table —
// so LoadOracle restores serving state without re-running Build.
// Storage holes left by earlier updates are compacted away on write.
func (o *Oracle) Save(path string) error {
	if err := core.SaveOracleFile(path, o.cur().o); err != nil {
		return fmt.Errorf("vicinity: save oracle: %w", err)
	}
	return nil
}

// LoadOracle reads an oracle written by Save. Loading is array copies
// plus a checksum pass — orders of magnitude faster than rebuilding —
// and the loaded oracle answers every query identically to the
// original. Corrupt or truncated files are rejected.
func LoadOracle(path string) (*Oracle, error) {
	co, err := core.LoadOracleFile(path)
	if err != nil {
		return nil, fmt.Errorf("vicinity: load oracle: %w", err)
	}
	return newOracle(co, &Graph{g: co.Graph()}), nil
}

// Graph returns the graph of the oracle's current epoch. The returned
// Graph is an immutable snapshot: updates applied to the oracle later
// produce new snapshots and never mutate it.
func (o *Oracle) Graph() *Graph { return o.cur().g }

// Update is a batch of graph mutations for ApplyUpdates: AddNodes
// fresh nodes (assigned ids n .. n+AddNodes-1, where n is the node
// count before the batch), inserted undirected unit-weight Edges
// (which may reference the new ids; self-loops, duplicates and edges
// already present are ignored), deleted edges (DelEdges — every edge
// must exist, ErrEdgeNotFound otherwise), DelNodes (shorthand for
// deleting every incident edge; the id survives as an isolated node),
// and SetWeights weight changes for weighted oracles (on unweighted
// oracles only W == 1 is accepted, as an idempotent insert-or-keep
// upsert). A batch naming the same edge in conflicting ops (inserted
// and deleted, or deleted and reweighted) is rejected whole.
type Update = core.Update

// WeightChange sets edge {U, V} to weight W in Update.SetWeights.
type WeightChange = core.WeightChange

// ApplyUpdates mutates the oracle's graph in place of a rebuild: new
// edges and nodes, deleted edges, and changed weights are absorbed by
// repairing only the vicinities, boundaries and landmark tables the
// change can reach (typically a small neighborhood of the touched
// endpoints). The repaired oracle answers every query exactly as an
// oracle freshly built on the mutated graph with the same landmark set
// would.
//
// ApplyUpdates is safe to call concurrently with queries — they keep
// reading the previous epoch until the new one is installed atomically
// — and updates are serialized among themselves. Weighted oracles
// accept deletions and weight changes but not edge insertion
// (ErrWeightedUpdate); the landmark set is kept fixed, so after the
// graph has drifted far from its built size a fresh Build re-balances
// the α·√n size trade-off (see DESIGN.md).
func (o *Oracle) ApplyUpdates(u Update) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.cur()
	co, err := cur.o.ApplyUpdates(u)
	if err != nil {
		return fmt.Errorf("vicinity: apply updates: %w", err)
	}
	if co != cur.o {
		o.ep.Store(&oracleEpoch{o: co, g: &Graph{g: co.Graph()}})
	}
	return nil
}

// ErrWeightedUpdate is returned when an update needs unweighted
// semantics on a weighted oracle: edge insertion (a new edge has no
// well-defined weight there) or a SetWeights entry with W != 1 on an
// unweighted oracle.
var ErrWeightedUpdate = core.ErrWeightedUpdate

// ErrEdgeNotFound is returned when an update deletes or reweights an
// edge that does not exist in the current graph. Nothing is applied.
var ErrEdgeNotFound = core.ErrEdgeNotFound

// InsertEdge adds the undirected unit-weight edge {u, v} to the graph
// and repairs the oracle incrementally. Equivalent to ApplyUpdates
// with a single edge; for many edges, one batched ApplyUpdates is
// cheaper than repeated InsertEdge calls.
func (o *Oracle) InsertEdge(u, v uint32) error {
	return o.ApplyUpdates(Update{Edges: [][2]uint32{{u, v}}})
}

// DeleteEdge removes the undirected edge {u, v} and repairs the oracle
// decrementally (ErrEdgeNotFound if the edge does not exist). The
// endpoints survive; a node left without edges becomes unreachable.
// Equivalent to ApplyUpdates with a single DelEdges entry.
func (o *Oracle) DeleteEdge(u, v uint32) error {
	return o.ApplyUpdates(Update{DelEdges: [][2]uint32{{u, v}}})
}

// SetWeight changes the weight of the existing edge {u, v} to w on a
// weighted oracle and repairs the affected state (ErrEdgeNotFound if
// the edge does not exist). On unweighted oracles only w == 1 is
// legal, where it degenerates to an idempotent InsertEdge. Equivalent
// to ApplyUpdates with a single SetWeights entry.
func (o *Oracle) SetWeight(u, v, w uint32) error {
	return o.ApplyUpdates(Update{SetWeights: []WeightChange{{U: u, V: v, W: w}}})
}

// AddNode grows the graph by one isolated node and returns its id.
// Connect it with InsertEdge or ApplyUpdates; until then it is
// unreachable from every other node.
func (o *Oracle) AddNode() (uint32, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.cur()
	id := uint32(cur.o.Graph().NumNodes())
	co, err := cur.o.ApplyUpdates(Update{AddNodes: 1})
	if err != nil {
		return 0, fmt.Errorf("vicinity: add node: %w", err)
	}
	o.ep.Store(&oracleEpoch{o: co, g: &Graph{g: co.Graph()}})
	return id, nil
}

// Request describes one request-scoped query for Query: a source, one
// target (T) or many (Ts), and per-request overrides — fallback Policy,
// a fallback search node Budget, ranked-alternatives fan-out K, and the
// WantPath/WantStats flags. The zero value of every override reproduces
// the legacy behavior exactly.
type Request = core.Request

// Result carries the answer(s) of one Query: distance/method/path for
// a single target, Items for one-to-many, the ranked alternatives in
// Paths when Request.K > 1, plus the snapshot Epoch that answered and
// the per-request cost counters.
type Result = core.Result

// PathAlt is one ranked alternative in Result.Paths: a loopless path
// (endpoints inclusive) and its total distance. Alternatives are
// sorted by (distance, length, lexicographic order), so the ranking is
// deterministic for a given graph snapshot.
type PathAlt = core.PathAlt

// MaxK caps Request.K, the number of ranked loopless alternatives one
// query may ask for. K = 1 answers bit-identically to a plain WantPath
// query; fewer than K paths may exist, in which case Result.Paths
// holds all of them.
const MaxK = core.MaxK

// ItemResult is one target's answer in a one-to-many Result.
type ItemResult = core.ItemResult

// Cost aggregates the work one Query performed (table look-ups, scan
// members examined, fallback searches and their node expansions).
type Cost = core.Cost

// Policy selects per-request fallback handling, overriding the
// build-time Options default for one query.
type Policy = core.Policy

// Per-request fallback policies.
const (
	// PolicyDefault uses the oracle's build-time fallback.
	PolicyDefault = core.PolicyDefault
	// PolicyFull answers unresolved queries with the exact
	// bidirectional search (bounded by Request.Budget and ctx).
	PolicyFull = core.PolicyFull
	// PolicyEstimate answers unresolved queries with the landmark
	// triangulation upper bound (no search).
	PolicyEstimate = core.PolicyEstimate
	// PolicyTableOnly answers from the stored tables only.
	PolicyTableOnly = core.PolicyTableOnly
)

// ParsePolicy parses "default", "full", "estimate" or "table".
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// The query error taxonomy. Every error returned by the query surface
// wraps one of these sentinels (plus ErrWeightedUpdate on the update
// surface), so callers branch with errors.Is instead of matching
// strings; the wire protocol and HTTP API carry the same taxonomy as
// typed error codes.
var (
	// ErrNodeRange: a query node id is >= NumNodes.
	ErrNodeRange = core.ErrNodeRange
	// ErrNotCovered: a query node is outside the build scope.
	ErrNotCovered = core.ErrNotCovered
	// ErrUnreachable: the taxonomy entry tools use to surface "no
	// path" as an error; the query engine itself reports
	// unreachability in-band (NoDist + MethodUnreachable, nil error).
	ErrUnreachable = core.ErrUnreachable
	// ErrBudgetExceeded: a fallback search stopped at Request.Budget
	// node expansions; the Result still carries the best-known upper
	// bound.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrCanceled: the request context was canceled or its deadline
	// expired mid-query; wraps the context's own error.
	ErrCanceled = core.ErrCanceled
	// ErrStaleSnapshot: updates were applied to a superseded snapshot.
	ErrStaleSnapshot = core.ErrStaleSnapshot
)

// Query answers one request-scoped query against the oracle's current
// epoch: per-request fallback policy, a node budget for the fallback
// search, and context cancellation honored inside the search loop.
// With a zero-override Request the answer is bit-identical to the
// legacy calls; see the core package's Query documentation for the
// budget and cancellation contracts. The legacy Distance, Path,
// DistanceMany and PathMany methods are thin wrappers over Query and
// remain fully supported; new callers should prefer Query, which is
// the surface deadlines, budgets and future per-request controls are
// added to.
func (o *Oracle) Query(ctx context.Context, req Request) (Result, error) {
	return o.cur().o.Query(ctx, req)
}

// Distance returns the distance from s to t and the method that
// resolved it. NoDist means unreachable (MethodUnreachable) or
// unresolved (MethodNone).
//
// Distance is a thin wrapper over Query with a default-policy Request;
// use Query directly for deadlines, budgets or per-query policy.
func (o *Oracle) Distance(s, t uint32) (uint32, Method, error) {
	res, err := o.cur().o.Query(context.Background(), core.Request{S: s, T: t})
	return res.Dist, res.Method, err
}

// Path returns a shortest path from s to t inclusive of endpoints, or
// nil when no path exists or the query is unresolved.
//
// Path is a thin wrapper over Query with a default-policy Request and
// WantPath set; use Query directly for deadlines, budgets or
// per-query policy.
func (o *Oracle) Path(s, t uint32) ([]uint32, Method, error) {
	res, err := o.cur().o.Query(context.Background(), core.Request{S: s, T: t, WantPath: true})
	return res.Path, res.Method, err
}

// BatchResult is one target's answer in a DistanceMany batch: the
// distance and method Distance would return for the same pair, or a
// per-target error (target out of range, endpoint outside the build
// scope).
type BatchResult = core.BatchResult

// BatchPathResult is one target's answer in a PathMany batch.
type BatchPathResult = core.BatchPathResult

// BatchStats aggregates the work one batch performed (targets resolved
// from tables, fallback searches run, members scanned).
type BatchStats = core.BatchStats

// DistanceMany answers the one-to-many query s → each of ts — the
// paper's "social search" ranking shape — loading s's vicinity,
// landmark row and boundary once and servicing all residual
// boundary-scan targets with a single inverted pass. Every per-target
// answer (distance, method, error) is identical to Distance(s, ts[i]);
// the error return is non-nil only when s itself is out of range.
//
// The whole batch reads one oracle epoch: updates applied concurrently
// never mix snapshots within a batch.
//
// DistanceMany is a thin wrapper over Query with a default-policy
// one-to-many Request.
func (o *Oracle) DistanceMany(s uint32, ts []uint32) ([]BatchResult, error) {
	res, err := o.cur().o.Query(context.Background(), manyRequest(s, ts, false))
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(res.Items))
	for i, it := range res.Items {
		out[i] = BatchResult{Dist: it.Dist, Method: it.Method, Err: it.Err}
	}
	return out, nil
}

// manyRequest builds a one-to-many Request; a nil target slice still
// selects the batch path (Query treats nil Ts as single-target).
func manyRequest(s uint32, ts []uint32, wantPath bool) core.Request {
	if ts == nil {
		ts = []uint32{}
	}
	return core.Request{S: s, Ts: ts, WantPath: wantPath}
}

// DistanceManyStats is DistanceMany with batch instrumentation added
// to bst (must be non-nil).
func (o *Oracle) DistanceManyStats(s uint32, ts []uint32, bst *BatchStats) ([]BatchResult, error) {
	return o.cur().o.DistanceManyStats(s, ts, bst)
}

// PathMany answers one-to-many path queries against a single oracle
// epoch; each target's path, method and error are identical to
// Path(s, ts[i]).
//
// PathMany is a thin wrapper over Query with a default-policy
// one-to-many Request and WantPath set.
func (o *Oracle) PathMany(s uint32, ts []uint32) ([]BatchPathResult, error) {
	res, err := o.cur().o.Query(context.Background(), manyRequest(s, ts, true))
	if err != nil {
		return nil, err
	}
	out := make([]BatchPathResult, len(res.Items))
	for i, it := range res.Items {
		out[i] = BatchPathResult{Path: it.Path, Method: it.Method, Err: it.Err}
	}
	return out, nil
}

// IsLandmark reports whether u is in the sampled landmark set L.
func (o *Oracle) IsLandmark(u uint32) bool { return o.cur().o.IsLandmark(u) }

// Landmarks returns the sorted landmark set (shared slice; do not
// modify). The set is fixed at Build time; dynamic updates do not
// re-sample it.
func (o *Oracle) Landmarks() []uint32 { return o.cur().o.Landmarks() }

// VicinitySize returns |Γ(u)| (0 for landmarks).
func (o *Oracle) VicinitySize(u uint32) int { return o.cur().o.VicinitySize(u) }

// Radius returns d(u, l(u)), u's distance to its nearest landmark.
func (o *Oracle) Radius(u uint32) uint32 { return o.cur().o.Radius(u) }

// Stats summarizes the built data structure.
type Stats struct {
	Nodes, Edges  int
	Alpha         float64
	Landmarks     int
	AvgVicinity   float64
	MaxVicinity   int
	AvgBoundary   float64
	AvgRadius     float64
	TotalEntries  int64
	TotalBytes    int64
	SavingsVsAPSP float64 // all-pairs entries / stored entries
}

// Stats computes the oracle's build and memory statistics for the
// current epoch.
func (o *Oracle) Stats() Stats {
	co := o.cur().o
	bs := co.Stats()
	ms := co.Memory()
	return Stats{
		Nodes:         bs.Nodes,
		Edges:         bs.Edges,
		Alpha:         bs.Alpha,
		Landmarks:     bs.Landmarks,
		AvgVicinity:   bs.AvgVicinity,
		MaxVicinity:   bs.MaxVicinity,
		AvgBoundary:   bs.AvgBoundary,
		AvgRadius:     bs.AvgRadius,
		TotalEntries:  ms.TotalEntries,
		TotalBytes:    ms.TotalBytes,
		SavingsVsAPSP: ms.SavingsFactor,
	}
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf(
		"oracle(n=%d, m=%d, α=%g, |L|=%d, |Γ| avg %.0f, %.1f MB, %0.fx vs APSP)",
		s.Nodes, s.Edges, s.Alpha, s.Landmarks, s.AvgVicinity,
		float64(s.TotalBytes)/(1<<20), s.SavingsVsAPSP)
}
