// Package vicinity is an exact point-to-point shortest-path oracle for
// social networks, reproducing "Shortest Paths in Less Than a
// Millisecond" (Agarwal, Caesar, Godfrey, Zhao — WOSN/SIGCOMM 2012).
//
// The oracle precomputes, for every node u, a small "vicinity" Γ(u) —
// all nodes no farther from u than u's nearest landmark, where landmarks
// are sampled with probability growing in node degree — plus full
// distance tables for the landmarks themselves. A query between s and t
// is then a handful of hash-table probes: either one endpoint is a
// landmark, or one lies in the other's vicinity, or the boundary of
// Γ(s) is scanned against Γ(t) and the minimum d(s,w)+d(w,t) over the
// intersection is the exact distance (Theorem 1 of the paper). On
// social-network topologies with α = 4 (vicinity size ≈ 4√n), over 99%
// of random queries resolve from the tables in microseconds; the rest
// fall back to an exact bidirectional search by default.
//
// # Quick start
//
//	g := vicinity.GenerateSocial(10000, 9, 1) // or LoadGraph / NewBuilder
//	oracle, err := vicinity.Build(g, nil)     // nil = paper defaults (α=4)
//	d, method, err := oracle.Distance(12, 97)
//	path, _, err := oracle.Path(12, 97)
//
// # Guarantees
//
// For unweighted graphs every answer whose Method is Exact is the true
// shortest distance; the property is proven in the paper's appendix and
// property-tested in this repository. For weighted graphs (positive
// integer weights), resolved answers are upper bounds that are exact
// whenever some shortest-path vertex lies in both vicinities — see
// DESIGN.md for the honest discussion of the weighted case.
//
// Oracles are immutable after Build and safe for concurrent queries.
package vicinity

import (
	"errors"
	"fmt"

	"vicinity/internal/core"
	"vicinity/internal/gen"
	"vicinity/internal/graph"
	"vicinity/internal/xrand"
)

// NoDist is returned as the distance for unreachable or unresolved
// pairs.
const NoDist = ^uint32(0)

// Graph is an immutable undirected graph with dense uint32 node ids.
type Graph struct {
	g *graph.Graph
}

// Builder accumulates edges for a Graph. Self-loops are dropped and
// duplicate edges merged; node ids must be < n.
type Builder struct {
	b *graph.Builder
}

// NewBuilder returns a Builder for a graph over n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{b: graph.NewBuilder(n)}
}

// AddEdge records the undirected edge {u, v} with weight 1.
func (b *Builder) AddEdge(u, v uint32) { b.b.AddEdge(u, v) }

// AddWeightedEdge records the undirected edge {u, v} with weight w
// (w >= 1 for oracle builds).
func (b *Builder) AddWeightedEdge(u, v, w uint32) { b.b.AddWeightedEdge(u, v, w) }

// Build finalizes the graph.
func (b *Builder) Build() *Graph { return &Graph{g: b.b.Build()} }

// NewGraph builds an unweighted graph over n nodes from an edge list.
func NewGraph(n int, edges [][2]uint32) *Graph {
	return &Graph{g: graph.FromEdges(n, edges)}
}

// LoadGraph reads a graph file, auto-detecting the binary format and
// falling back to the text edge-list format ("u v [w]" lines, '#'
// comments).
func LoadGraph(path string) (*Graph, error) {
	g, err := graph.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveBinary writes the graph to path in the fast binary format.
func (g *Graph) SaveBinary(path string) error { return graph.SaveBinaryFile(path, g.g) }

// SaveEdgeList writes the graph to path as a text edge list.
func (g *Graph) SaveEdgeList(path string) error { return graph.SaveEdgeListFile(path, g.g) }

// GenerateSocial returns a synthetic social network: a Holme–Kim
// powerlaw-cluster graph with n nodes, about k·n edges (average degree
// ≈ 2k) and high clustering. Deterministic in seed; always connected.
func GenerateSocial(n, k int, seed uint64) *Graph {
	return &Graph{g: gen.HolmeKim(xrand.New(seed), n, k, 0.5)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u uint32) int { return g.g.Degree(u) }

// Neighbors returns the sorted adjacency of u (shared slice; do not
// modify).
func (g *Graph) Neighbors(u uint32) []uint32 { return g.g.Neighbors(u) }

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v uint32) bool { return g.g.HasEdge(u, v) }

// AvgDegree returns 2m/n.
func (g *Graph) AvgDegree() float64 { return g.g.AvgDegree() }

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool { return graph.Connected(g.g) }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.g.NumNodes(), g.g.NumEdges())
}

// Method reports how a query was answered; see the constants.
type Method = core.Method

// Query resolution methods (Algorithm 1 cases and fallbacks).
const (
	// MethodNone: unresolved (vicinities disjoint, fallback disabled).
	MethodNone = core.MethodNone
	// MethodSame: s == t.
	MethodSame = core.MethodSame
	// MethodLandmarkSource: s is a landmark (answered from its table).
	MethodLandmarkSource = core.MethodLandmarkSource
	// MethodLandmarkTarget: t is a landmark.
	MethodLandmarkTarget = core.MethodLandmarkTarget
	// MethodVicinitySource: t ∈ Γ(s).
	MethodVicinitySource = core.MethodVicinitySource
	// MethodVicinityTarget: s ∈ Γ(t).
	MethodVicinityTarget = core.MethodVicinityTarget
	// MethodIntersection: resolved by the boundary scan.
	MethodIntersection = core.MethodIntersection
	// MethodFallbackExact: resolved by the exact bidirectional fallback.
	MethodFallbackExact = core.MethodFallbackExact
	// MethodFallbackEstimate: landmark triangulation estimate (inexact).
	MethodFallbackEstimate = core.MethodFallbackEstimate
	// MethodUnreachable: no path exists.
	MethodUnreachable = core.MethodUnreachable
)

// Fallback selects the behavior for queries the tables cannot resolve.
type Fallback = core.Fallback

// Fallback modes.
const (
	// FallbackExact answers unresolved queries with bidirectional search
	// (default; the paper's footnote 1).
	FallbackExact = core.FallbackExact
	// FallbackEstimate answers with a landmark triangulation upper bound.
	FallbackEstimate = core.FallbackEstimate
	// FallbackNone reports unresolved queries as MethodNone.
	FallbackNone = core.FallbackNone
)

// Options configures Build. The zero value (or a nil pointer) gives the
// paper's defaults: α = 4, √degree landmark sampling, hash-table
// vicinities, landmark tables, path data, and the exact fallback.
type Options struct {
	// Alpha controls the expected vicinity size α·√n (paper: 4).
	Alpha float64
	// Seed makes landmark sampling deterministic.
	Seed uint64
	// Workers bounds build parallelism (0 = GOMAXPROCS).
	Workers int
	// Fallback selects unresolved-query handling.
	Fallback Fallback
	// DistanceOnly drops path data (parent pointers and landmark parent
	// tables); Path queries then use the fallback.
	DistanceOnly bool
	// WithoutLandmarkTables skips the |L|·n landmark distance tables;
	// landmark-endpoint queries then resolve via vicinities or fallback.
	WithoutLandmarkTables bool

	// CompactLandmarkTables halves landmark-table memory (the dominant
	// term) by storing uint16 distances — the paper's §5 memory question.
	// Build fails on graphs with distances above 65534.
	CompactLandmarkTables bool
	// Nodes restricts vicinity construction to these nodes (advanced;
	// used by the evaluation harness to mirror the paper's methodology).
	Nodes []uint32
}

// Oracle is the built shortest-path oracle. Safe for concurrent use.
type Oracle struct {
	o *core.Oracle
	g *Graph
}

// Build runs the offline phase over g. A nil opts selects the paper's
// defaults.
func Build(g *Graph, opts *Options) (*Oracle, error) {
	if g == nil {
		return nil, errors.New("vicinity: nil graph")
	}
	var co core.Options
	if opts != nil {
		co = core.Options{
			Alpha:                 opts.Alpha,
			Seed:                  opts.Seed,
			Workers:               opts.Workers,
			Fallback:              opts.Fallback,
			DisablePathData:       opts.DistanceOnly,
			DisableLandmarkTables: opts.WithoutLandmarkTables,
			CompactLandmarkTables: opts.CompactLandmarkTables,
			Nodes:                 opts.Nodes,
		}
	}
	o, err := core.Build(g.g, co)
	if err != nil {
		return nil, fmt.Errorf("vicinity: %w", err)
	}
	return &Oracle{o: o, g: g}, nil
}

// Save writes the oracle to path in the versioned, checksummed binary
// oracle format (see DESIGN.md). The file is self-contained — it
// embeds the graph alongside every built table — so LoadOracle
// restores serving state without re-running Build.
func (o *Oracle) Save(path string) error {
	if err := core.SaveOracleFile(path, o.o); err != nil {
		return fmt.Errorf("vicinity: save oracle: %w", err)
	}
	return nil
}

// LoadOracle reads an oracle written by Save. Loading is array copies
// plus a checksum pass — orders of magnitude faster than rebuilding —
// and the loaded oracle answers every query identically to the
// original. Corrupt or truncated files are rejected.
func LoadOracle(path string) (*Oracle, error) {
	co, err := core.LoadOracleFile(path)
	if err != nil {
		return nil, fmt.Errorf("vicinity: load oracle: %w", err)
	}
	return &Oracle{o: co, g: &Graph{g: co.Graph()}}, nil
}

// Graph returns the graph the oracle was built over.
func (o *Oracle) Graph() *Graph { return o.g }

// Distance returns the distance from s to t and the method that
// resolved it. NoDist means unreachable (MethodUnreachable) or
// unresolved (MethodNone).
func (o *Oracle) Distance(s, t uint32) (uint32, Method, error) {
	return o.o.Distance(s, t)
}

// Path returns a shortest path from s to t inclusive of endpoints, or
// nil when no path exists or the query is unresolved.
func (o *Oracle) Path(s, t uint32) ([]uint32, Method, error) {
	return o.o.Path(s, t)
}

// IsLandmark reports whether u is in the sampled landmark set L.
func (o *Oracle) IsLandmark(u uint32) bool { return o.o.IsLandmark(u) }

// Landmarks returns the sorted landmark set (shared slice; do not
// modify).
func (o *Oracle) Landmarks() []uint32 { return o.o.Landmarks() }

// VicinitySize returns |Γ(u)| (0 for landmarks).
func (o *Oracle) VicinitySize(u uint32) int { return o.o.VicinitySize(u) }

// Radius returns d(u, l(u)), u's distance to its nearest landmark.
func (o *Oracle) Radius(u uint32) uint32 { return o.o.Radius(u) }

// Stats summarizes the built data structure.
type Stats struct {
	Nodes, Edges  int
	Alpha         float64
	Landmarks     int
	AvgVicinity   float64
	MaxVicinity   int
	AvgBoundary   float64
	AvgRadius     float64
	TotalEntries  int64
	TotalBytes    int64
	SavingsVsAPSP float64 // all-pairs entries / stored entries
}

// Stats computes the oracle's build and memory statistics.
func (o *Oracle) Stats() Stats {
	bs := o.o.Stats()
	ms := o.o.Memory()
	return Stats{
		Nodes:         bs.Nodes,
		Edges:         bs.Edges,
		Alpha:         bs.Alpha,
		Landmarks:     bs.Landmarks,
		AvgVicinity:   bs.AvgVicinity,
		MaxVicinity:   bs.MaxVicinity,
		AvgBoundary:   bs.AvgBoundary,
		AvgRadius:     bs.AvgRadius,
		TotalEntries:  ms.TotalEntries,
		TotalBytes:    ms.TotalBytes,
		SavingsVsAPSP: ms.SavingsFactor,
	}
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf(
		"oracle(n=%d, m=%d, α=%g, |L|=%d, |Γ| avg %.0f, %.1f MB, %0.fx vs APSP)",
		s.Nodes, s.Edges, s.Alpha, s.Landmarks, s.AvgVicinity,
		float64(s.TotalBytes)/(1<<20), s.SavingsVsAPSP)
}
