package vicinity

// Benchmarks regenerating the paper's evaluation, one per experiment id
// in DESIGN.md. These run at reduced scale so `go test -bench=.`
// finishes in minutes; cmd/spbench produces the full paper-shaped
// tables (see EXPERIMENTS.md for recorded results).

import (
	"sync"
	"testing"

	"vicinity/internal/approx"
	"vicinity/internal/baseline"
	"vicinity/internal/core"
	"vicinity/internal/expt"
	"vicinity/internal/gen"
	"vicinity/internal/graph"
	"vicinity/internal/tz"
	"vicinity/internal/xrand"
)

// benchCfg is the reduced-scale configuration shared by the harness
// benchmarks.
func benchCfg() expt.Config {
	cfg := expt.DefaultConfig()
	cfg.Samples = 120
	cfg.Reps = 1
	cfg.Alphas = []float64{0.25, 4, 16}
	cfg.Nodes = 4000
	return cfg
}

var (
	benchOnce sync.Once
	benchDS   []expt.Dataset
)

func benchDatasets(b *testing.B) []expt.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = expt.DefaultDatasets(benchCfg())
	})
	return benchDS
}

// --- T2: Table 2, dataset statistics ---

func BenchmarkTable2DatasetStats(b *testing.B) {
	ds := benchDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expt.Table2(ds)
		if len(rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// --- F2a: Figure 2(left), intersection fraction vs α ---

func BenchmarkFig2aIntersectionSweep(b *testing.B) {
	ds := benchDatasets(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := expt.IntersectionSweep(ds[0], cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].Fraction, "frac@α=16")
	}
}

// --- F2b: Figure 2(center), boundary size CDF ---

func BenchmarkFig2bBoundaryCDF(b *testing.B) {
	ds := benchDatasets(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := expt.BoundaryCDF(ds[0], cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) > 0 {
			b.ReportMetric(100*pts[len(pts)-1].X, "worst-%ofN")
		}
	}
}

// --- F2c: Figure 2(right), vicinity radius vs α ---

func BenchmarkFig2cRadiusSweep(b *testing.B) {
	ds := benchDatasets(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := expt.RadiusSweep(ds[0], cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].AvgRadius, "radius@α=4")
	}
}

// --- T3: Table 3, per-query latency of ours vs BFS vs BiBFS ---

// table3Fixture builds a scoped oracle and query pairs for one dataset.
type table3Fixture struct {
	oracle *core.Oracle
	g      *graph.Graph
	pairs  [][2]uint32
}

var (
	t3mu  sync.Mutex
	t3fix = map[string]*table3Fixture{}
)

func table3Fix(b *testing.B, d expt.Dataset) *table3Fixture {
	b.Helper()
	t3mu.Lock()
	defer t3mu.Unlock()
	if f, ok := t3fix[d.Name]; ok {
		return f
	}
	cfg := benchCfg()
	r := xrand.New(cfg.Seed)
	nodes := make([]uint32, 0, cfg.Samples)
	seen := map[uint32]bool{}
	for len(nodes) < cfg.Samples {
		u := r.Uint32n(uint32(d.Graph.NumNodes()))
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	o, err := core.Build(d.Graph, core.Options{
		Alpha: cfg.Alpha, Seed: cfg.Seed, Nodes: nodes,
	})
	if err != nil {
		b.Fatal(err)
	}
	var pairs [][2]uint32
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			pairs = append(pairs, [2]uint32{nodes[i], nodes[j]})
		}
	}
	f := &table3Fixture{oracle: o, g: d.Graph, pairs: pairs}
	t3fix[d.Name] = f
	return f
}

func benchTable3Oracle(b *testing.B, d expt.Dataset) {
	f := table3Fix(b, d)
	var st core.QueryStats
	var lookups int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		if _, err := f.oracle.DistanceStats(p[0], p[1], &st); err != nil {
			b.Fatal(err)
		}
		lookups += int64(st.Lookups)
	}
	b.ReportMetric(float64(lookups)/float64(b.N), "lookups/op")
}

func benchTable3Engine(b *testing.B, d expt.Dataset, eng baseline.Querier) {
	f := table3Fix(b, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		eng.Distance(p[0], p[1])
	}
}

func BenchmarkTable3Oracle(b *testing.B) {
	for _, d := range benchDatasets(b) {
		b.Run(d.Name, func(b *testing.B) { benchTable3Oracle(b, d) })
	}
}

func BenchmarkTable3BFS(b *testing.B) {
	for _, d := range benchDatasets(b) {
		b.Run(d.Name, func(b *testing.B) {
			benchTable3Engine(b, d, baseline.NewBFS(d.Graph))
		})
	}
}

func BenchmarkTable3BiBFS(b *testing.B) {
	for _, d := range benchDatasets(b) {
		b.Run(d.Name, func(b *testing.B) {
			benchTable3Engine(b, d, baseline.NewBiBFS(d.Graph))
		})
	}
}

// --- M1: §3.2 memory accounting ---

func BenchmarkMemoryStats(b *testing.B) {
	ds := benchDatasets(b)
	f := table3Fix(b, ds[3]) // LiveJournal profile, the paper's 550× row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := f.oracle.Memory()
		b.ReportMetric(ms.ProjectedSavings, "savings-x")
	}
}

// --- A1: boundary scan vs full vicinity scan ---

func BenchmarkAblationBoundaryVsFull(b *testing.B) {
	ds := benchDatasets(b)
	cfg := benchCfg()
	b.Run("boundary", func(b *testing.B) {
		row, err := expt.AblationBoundary(ds[0], cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.BoundaryLookups, "lookups/query")
		b.ReportMetric(float64(row.BoundaryTime.Nanoseconds()), "ns/query")
	})
}

// --- A2: sampling strategy ablation ---

func BenchmarkAblationSampling(b *testing.B) {
	ds := benchDatasets(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := expt.AblationSampling(ds[0], cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Resolved, "paper-resolved")
	}
}

// --- A3: vicinity table implementation ablation ---

func BenchmarkAblationTableImpl(b *testing.B) {
	ds := benchDatasets(b)
	cfg := benchCfg()
	for _, kind := range []core.TableKind{core.TableHash, core.TableSorted, core.TableBuiltin} {
		b.Run(kind.String(), func(b *testing.B) {
			r := xrand.New(cfg.Seed)
			n := uint32(ds[0].Graph.NumNodes())
			nodes := make([]uint32, 0, cfg.Samples)
			seen := map[uint32]bool{}
			for len(nodes) < cfg.Samples {
				u := r.Uint32n(n)
				if !seen[u] {
					seen[u] = true
					nodes = append(nodes, u)
				}
			}
			o, err := core.Build(ds[0].Graph, core.Options{
				Alpha: cfg.Alpha, Seed: cfg.Seed, Nodes: nodes,
				TableKind: kind, Fallback: core.FallbackNone,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := nodes[i%len(nodes)]
				t := nodes[(i*7+1)%len(nodes)]
				var st core.QueryStats
				if _, err := o.DistanceStats(s, t, &st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A4: parallel query throughput ---

func BenchmarkParallelQueries(b *testing.B) {
	ds := benchDatasets(b)
	f := table3Fix(b, ds[3])
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(99)
		var st core.QueryStats
		for pb.Next() {
			p := f.pairs[int(r.Uint32n(uint32(len(f.pairs))))]
			if _, err := f.oracle.DistanceStats(p[0], p[1], &st); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- R1: approximate baseline comparison ---

func BenchmarkApproxBaselines(b *testing.B) {
	ds := benchDatasets(b)
	g := ds[0].Graph
	r := xrand.New(7)
	n := uint32(g.NumNodes())
	pairs := make([][2]uint32, 512)
	for i := range pairs {
		pairs[i] = [2]uint32{r.Uint32n(n), r.Uint32n(n)}
	}
	lm := approx.NewLandmark(g, 16)
	sk := approx.NewSketch(g, 2, 7)
	tzo := tz.New(g, 7)
	b.Run("landmark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i&511]
			lm.Estimate(p[0], p[1])
		}
	})
	b.Run("sketch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i&511]
			sk.Estimate(p[0], p[1])
		}
	})
	b.Run("thorup-zwick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i&511]
			tzo.Distance(p[0], p[1])
		}
	})
}

// --- S1: build cost scaling (offline phase) ---

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		g := gen.HolmeKim(xrand.New(1), n, 9, 0.45)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(g, core.Options{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
